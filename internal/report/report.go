// Package report renders the framework's results in the shapes the paper
// publishes them: aligned text tables (Tables 4–7), percentage slowdown
// matrices (Appendix A), ASCII Kiviat plots (Figure 1), dendrograms, and
// indented surrogating-graphs (Figures 6–8).
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"xpscalar/internal/core"
	"xpscalar/internal/subsetting"
)

// Table is a simple aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Write renders the table with column alignment.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// CrossMatrix renders an IPT matrix in Table 5's layout: workloads as rows,
// architectures as columns.
func CrossMatrix(w io.Writer, m *core.Matrix) error {
	t := &Table{Header: append([]string{"workload\\arch"}, m.Names...)}
	for i, name := range m.Names {
		row := []string{name}
		for j := range m.Names {
			row = append(row, fmt.Sprintf("%.2f", m.IPT[i][j]))
		}
		t.AddRow(row...)
	}
	return t.Write(w)
}

// SlowdownMatrix renders Appendix A: percentage slowdown of each workload
// (row) on each architecture (column), with the graph's selected links
// starred when a surrogate graph is supplied.
func SlowdownMatrix(w io.Writer, m *core.Matrix, g *core.SurrogateGraph) error {
	marked := map[[2]int]bool{}
	if g != nil {
		for _, e := range g.Edges {
			marked[[2]int{e.Workload, e.Surrogate}] = true
		}
	}
	t := &Table{Header: append([]string{"workload\\arch"}, m.Names...)}
	s := m.SlowdownMatrix()
	for i, name := range m.Names {
		row := []string{name}
		for j := range m.Names {
			cell := fmt.Sprintf("%.1f%%", s[i][j]*100)
			if marked[[2]int{i, j}] {
				cell = "*" + cell
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.Write(w)
}

// SurrogateGraph renders the graph as indented groups, one per surviving
// architecture, in the style of Figures 6–8: the head first, then its
// direct and transitive dependents with the assignment order and slowdown.
func SurrogateGraph(w io.Writer, m *core.Matrix, g *core.SurrogateGraph) error {
	if _, err := fmt.Fprintf(w, "policy: %v   harmonic IPT: %.3f   avg slowdown: %.1f%%\n",
		g.Policy, g.HarmonicIPT(), g.AvgSlowdown()*100); err != nil {
		return err
	}
	orderOf := map[int]core.Edge{}
	for _, e := range g.Edges {
		orderOf[e.Workload] = e
	}
	for _, head := range g.RemainingArchs() {
		if _, err := fmt.Fprintf(w, "(%s)\n", m.Names[head]); err != nil {
			return err
		}
		// Group members sorted by assignment order.
		var members []int
		for wl := 0; wl < m.N(); wl++ {
			if g.Head(wl) == head && wl != head {
				members = append(members, wl)
			}
		}
		sort.Slice(members, func(a, b int) bool {
			return orderOf[members[a]].Order < orderOf[members[b]].Order
		})
		for _, wl := range members {
			e := orderOf[wl]
			note := ""
			if e.Feedback {
				note = "  [feedback]"
			}
			via := ""
			if e.Surrogate != head {
				via = fmt.Sprintf(" via %s", m.Names[e.Surrogate])
			}
			if _, err := fmt.Fprintf(w, "  %2d. %-8s %.1f%% slowdown%s%s\n",
				e.Order, m.Names[wl], e.Slowdown*100, via, note); err != nil {
				return err
			}
		}
	}
	return nil
}

// Kiviat renders one workload's five-axis Kiviat vector as a horizontal bar
// sketch (an ASCII stand-in for Figure 1's radar plots).
func Kiviat(w io.Writer, k subsetting.Kiviat) error {
	if _, err := fmt.Fprintf(w, "%s\n", k.Name); err != nil {
		return err
	}
	labels := []string{"A ws  ", "B pred", "C deps", "D lds ", "E brs "}
	for i, v := range k.Axes {
		n := int(v + 0.5)
		if _, err := fmt.Fprintf(w, "  %s |%s%s| %4.1f\n",
			labels[i], strings.Repeat("#", n), strings.Repeat(".", subsetting.KiviatScale-n), v); err != nil {
			return err
		}
	}
	return nil
}

// Heatmap renders the cross-configuration slowdown matrix as an ASCII
// heat map — the paper's xp-scalar ships "a tool for visualizing the
// performance of the benchmarks on each other's customized configurations,
// which eases the identification of discrepancies" (§3); this is that
// tool's text rendering. Each cell shades the workload's slowdown on the
// architecture: ' ' under 5%, '░' under 15%, '▒' under 30%, '▓' under 50%,
// '█' beyond.
func Heatmap(w io.Writer, m *core.Matrix) error {
	shade := func(s float64) string {
		switch {
		case s < 0.05:
			return " ·"
		case s < 0.15:
			return " ░"
		case s < 0.30:
			return " ▒"
		case s < 0.50:
			return " ▓"
		default:
			return " █"
		}
	}
	width := 0
	for _, n := range m.Names {
		if len(n) > width {
			width = len(n)
		}
	}
	if _, err := fmt.Fprintf(w, "%*s", width, ""); err != nil {
		return err
	}
	for i := range m.Names {
		if _, err := fmt.Fprintf(w, " %c", 'A'+i); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	s := m.SlowdownMatrix()
	for i, name := range m.Names {
		if _, err := fmt.Fprintf(w, "%*s", width, name); err != nil {
			return err
		}
		for j := range m.Names {
			if _, err := io.WriteString(w, shade(s[i][j])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "   (%c = %s's arch)\n", 'A'+i, name); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "\nshades: · <5%   ░ <15%   ▒ <30%   ▓ <50%   █ >=50% slowdown")
	return err
}

// Dendrogram renders the clustering tree sideways, leaves labelled by
// names, with merge heights.
func Dendrogram(w io.Writer, node *subsetting.DendrogramNode, names []string) error {
	var walk func(n *subsetting.DendrogramNode, depth int) error
	walk = func(n *subsetting.DendrogramNode, depth int) error {
		indent := strings.Repeat("  ", depth)
		if n.Item >= 0 {
			_, err := fmt.Fprintf(w, "%s- %s\n", indent, names[n.Item])
			return err
		}
		if _, err := fmt.Fprintf(w, "%s+ (h=%.2f)\n", indent, n.Height); err != nil {
			return err
		}
		if err := walk(n.Left, depth+1); err != nil {
			return err
		}
		return walk(n.Right, depth+1)
	}
	return walk(node, 0)
}
