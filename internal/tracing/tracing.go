// Package tracing is the span layer of the observability stack: where the
// telemetry package records *that* events happened (counters, JSONL event
// traces), this package records *where the time went* — a hierarchical
// account of a run as nested spans (run → workload → chain → anneal step →
// evaluation → simulation, plus matrix cells and pool dispatches), each
// stamped with start/end times and the worker that executed it.
//
// The recorder follows the same nil-is-off seam as explore.Observer: a nil
// *Recorder (equivalently, a zero Handle) makes every instrumentation site
// a single predictable branch with zero allocations, so the hot paths keep
// their uninstrumented cost when nobody is watching (guarded by
// TestDisabledSpanAllocs and BenchmarkDisabledSpan). When a recorder is
// installed, spans flow through the context: each layer begins a span as a
// child of the context's current span and re-parents the context for the
// layers below it.
//
// Completed spans are buffered in memory and snapshotted at the end of the
// run; export.go turns the snapshot into a Chrome trace-event file (one
// track per pool worker, loadable in Perfetto) or an aggregated self/total
// time-attribution table.
package tracing

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within one recorder; 0 means "no span".
type SpanID uint64

// Span kinds. The set is closed by convention, not by type: exporters and
// the attribution table aggregate by kind, so instrumentation sites should
// reuse these constants rather than invent near-duplicates.
const (
	// KindRun covers a whole tool invocation.
	KindRun = "run"
	// KindWorkload covers one workload's exploration (all chains).
	KindWorkload = "explore"
	// KindChain covers one annealing chain.
	KindChain = "chain"
	// KindStep covers one annealing iteration (move, evaluation, accept).
	KindStep = "step"
	// KindEvalHit/Dedup/Miss cover one engine evaluation, split by how it
	// was served so cache effectiveness is visible in the time breakdown.
	KindEvalHit   = "eval.hit"
	KindEvalDedup = "eval.dedup"
	KindEvalMiss  = "eval.miss"
	// KindEvalDisk covers an evaluation served from the persistent cache
	// tier: a memory-tier miss answered by the content-addressed disk
	// store instead of a simulation.
	KindEvalDisk = "eval.disk"
	// KindEvalBatch covers one engine batch evaluation — a group of design
	// points on one workload served together, lockstep when enough of them
	// miss. Its arg is the group size.
	KindEvalBatch = "eval.batch"
	// KindSource covers materializing or fetching a workload's instruction
	// stream inside an evaluation miss.
	KindSource = "source"
	// KindSimulate covers the pipeline simulation itself.
	KindSimulate = "simulate"
	// KindCell covers one cross-configuration matrix cell.
	KindCell = "cell"
	// KindDispatch covers one job execution on a pool worker.
	KindDispatch = "dispatch"
	// KindRemoteGet/Lookup cover one remote cache-tier round trip from the
	// client side: a single-key GET or a batched lookup POST to the owner
	// peer. Their arg is the number of keys requested.
	KindRemoteGet    = "remote.get"
	KindRemoteLookup = "remote.lookup"
	// KindServeGet/Put/Lookup cover the server side of the same round
	// trips: one handler invocation on the owning peer, stamped with the
	// caller's trace context so merged exporters can stitch the edge.
	KindServeGet    = "serve.get"
	KindServePut    = "serve.put"
	KindServeLookup = "serve.lookup"
	// KindJob covers one scheduled xpserve job from dequeue to completion.
	KindJob = "job"
)

// Span is one timed interval of a run. Values are created by Handle.Begin,
// completed by Handle.End, and immutable afterwards.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	// Track is the lane the span executed on: 0 for the caller's
	// goroutine, 1+w for pool worker w (see Pool.MapCtx). Exporters render
	// one Chrome-trace thread per track.
	Track int32  `json:"track,omitempty"`
	Kind  string `json:"kind"`
	// Name carries the kind-specific subject, typically a workload name.
	Name string `json:"name,omitempty"`
	// Arg carries one kind-specific integer: the chain index for chain
	// spans, the iteration for step spans, the instruction budget for
	// evaluation spans, the job index for dispatch spans.
	Arg int64 `json:"arg,omitempty"`
	// Start and End are nanoseconds since the recorder was created.
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
	// Trace, RemoteParent, and Job carry cross-process identity. They are
	// zero for purely local spans (the stream header's trace ID covers
	// those); spans that continue a remote caller's trace — server-side
	// cache handlers, scheduled jobs — are stamped explicitly so merged
	// exporters can stitch the process boundary. Trace is the fleet-unique
	// trace ID, RemoteParent the caller's span ID in *its* recorder, and
	// Job the xpserve job ID the work belongs to.
	Trace        string `json:"trace,omitempty"`
	RemoteParent SpanID `json:"remote_parent,omitempty"`
	Job          string `json:"job,omitempty"`
}

// DurNs is the span's duration in nanoseconds.
func (s Span) DurNs() int64 { return s.End - s.Start }

// Recorder collects completed spans. All methods are safe for concurrent
// use and safe on a nil receiver, where they are no-ops; instrumented code
// therefore never guards emission.
type Recorder struct {
	clock  func() int64 // nanoseconds since construction, monotonic
	nextID atomic.Uint64
	// origin is the wall-clock instant of the recorder's zero timestamp
	// (UnixNano), letting merged exporters align streams from different
	// processes on one axis. Zero for clock-injected test recorders.
	origin int64

	idMu    sync.Mutex
	traceID string

	mu    sync.Mutex
	spans []Span
}

// NewRecorder returns a recorder stamping spans against the wall clock,
// identified by a fresh fleet-unique trace ID.
func NewRecorder() *Recorder {
	start := time.Now()
	return &Recorder{
		clock:   func() int64 { return int64(time.Since(start)) },
		origin:  start.UnixNano(),
		traceID: NewTraceID(),
	}
}

// NewRecorderClock returns a recorder with an injected clock (nanoseconds
// since some fixed origin, monotone non-decreasing) — deterministic
// timestamps for golden tests. It carries no trace ID or wall-clock
// origin until SetTraceID/SetOrigin install them.
func NewRecorderClock(clock func() int64) *Recorder {
	return &Recorder{clock: clock}
}

// TraceID returns the recorder's fleet-unique trace ID ("" when unset or
// the recorder is nil).
func (r *Recorder) TraceID() string {
	if r == nil {
		return ""
	}
	r.idMu.Lock()
	defer r.idMu.Unlock()
	return r.traceID
}

// SetTraceID overrides the recorder's trace ID — the seam for callers that
// must correlate spans with an externally chosen ID (a job's fleet ID, a
// deterministic test). No-op on a nil recorder or an empty ID.
func (r *Recorder) SetTraceID(id string) {
	if r == nil || id == "" {
		return
	}
	r.idMu.Lock()
	r.traceID = id
	r.idMu.Unlock()
}

// Origin returns the wall-clock UnixNano of the recorder's zero timestamp
// (0 when unknown).
func (r *Recorder) Origin() int64 {
	if r == nil {
		return 0
	}
	return r.origin
}

// SetOrigin installs the wall-clock origin on a clock-injected recorder.
func (r *Recorder) SetOrigin(unixNs int64) {
	if r == nil {
		return
	}
	r.origin = unixNs
}

// Enabled reports whether spans are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// begin stamps a new span. The span is not retained until end.
func (r *Recorder) begin(parent SpanID, track int32, kind, name string, arg int64) Span {
	if r == nil {
		return Span{}
	}
	return Span{
		ID:     SpanID(r.nextID.Add(1)),
		Parent: parent,
		Track:  track,
		Kind:   kind,
		Name:   name,
		Arg:    arg,
		Start:  r.clock(),
	}
}

// end stamps the span's end time and retains it. Inert spans (from a nil
// recorder or a zero Handle) are dropped.
func (r *Recorder) end(s Span) {
	if r == nil || s.ID == 0 {
		return
	}
	s.End = r.clock()
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Len reports how many spans have completed so far.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans snapshots the completed spans, ordered by start time (ties by ID,
// which is allocation order). The recorder keeps collecting; the returned
// slice is the caller's.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Handle binds a recorder to a position in the span tree (the parent every
// new span attaches under) and a track. The zero Handle is the disabled
// state: Begin returns an inert Span and End drops it, both without
// allocating.
type Handle struct {
	rec    *Recorder
	parent SpanID
	track  int32
}

// Enabled reports whether spans begun through this handle are recorded.
func (h Handle) Enabled() bool { return h.rec != nil }

// Begin starts a span under the handle's current parent.
func (h Handle) Begin(kind, name string, arg int64) Span {
	return h.rec.begin(h.parent, h.track, kind, name, arg)
}

// End completes a span begun through this handle (or any handle of the
// same recorder).
func (h Handle) End(s Span) { h.rec.end(s) }

// WithParent returns a handle whose future spans attach under s — the
// non-context way to push one level down (used where a context is not in
// scope, e.g. inside the evaluation engine's compute path).
func (h Handle) WithParent(s Span) Handle {
	h.parent = s.ID
	return h
}

// BeginRemote starts a span that continues a remote caller's trace: like
// Begin, but the span is stamped with the caller's trace ID, remote parent
// span, and job ID so merged exporters can stitch the cross-process edge.
// An invalid SpanContext degrades to a plain Begin.
func (h Handle) BeginRemote(kind, name string, arg int64, sc SpanContext) Span {
	s := h.rec.begin(h.parent, h.track, kind, name, arg)
	if s.ID == 0 {
		return s
	}
	s.Trace = sc.TraceID
	s.RemoteParent = sc.Span
	s.Job = sc.Job
	return s
}

// Root returns a handle at the root of rec's span tree — the server-side
// entry point where no context carries a handle yet. A nil recorder yields
// the zero (disabled) handle.
func Root(rec *Recorder) Handle {
	return Handle{rec: rec}
}

// handleKey carries a *Handle through a context.
type handleKey struct{}

// NewContext installs rec at the root of the span tree. A nil recorder
// returns ctx unchanged, keeping the disabled path allocation-free.
func NewContext(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, handleKey{}, &Handle{rec: rec})
}

// Ensure installs rec if ctx does not already carry a recorder — the
// session-level seam: a session configured with a recorder traces every
// run on it, while a context already positioned in a span tree (the CLI's
// run span) is left alone.
func Ensure(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil || FromContext(ctx).Enabled() {
		return ctx
	}
	return NewContext(ctx, rec)
}

// FromContext returns the context's tracing handle; the zero (disabled)
// Handle when none was installed.
func FromContext(ctx context.Context) Handle {
	if h, ok := ctx.Value(handleKey{}).(*Handle); ok {
		return *h
	}
	return Handle{}
}

// ChildContext returns ctx re-parented under s, so spans begun by deeper
// layers attach to it. When ctx carries no recorder or s is inert, ctx is
// returned unchanged (and nothing allocates).
func ChildContext(ctx context.Context, s Span) context.Context {
	if s.ID == 0 {
		return ctx
	}
	h := FromContext(ctx)
	if h.rec == nil {
		return ctx
	}
	// Copy after the guards: taking a variable's address forces it to the
	// heap at its declaration, so the escaping copy must not exist on the
	// disabled path (guarded by TestDisabledZeroAllocs).
	nh := h
	nh.parent = s.ID
	return context.WithValue(ctx, handleKey{}, &nh)
}

// WithTrack returns ctx whose spans land on the given track (0 is the
// caller's goroutine; pool workers use 1+worker). Unchanged when ctx
// carries no recorder.
func WithTrack(ctx context.Context, track int) context.Context {
	h := FromContext(ctx)
	if h.rec == nil {
		return ctx
	}
	nh := h
	nh.track = int32(track)
	return context.WithValue(ctx, handleKey{}, &nh)
}
