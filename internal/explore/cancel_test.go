// Cancellation semantics of the exploration layer: cancelling mid-suite
// returns context.Canceled promptly with the completed outcomes, and a
// cancelled run never perturbs the engine — a later uncancelled run on the
// same engine is bit-identical to one on a fresh engine.

package explore

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"xpscalar/internal/evalengine"
	"xpscalar/internal/workload"
)

// cancelAfterSteps cancels a context once n annealing steps have been
// observed, cutting the search off mid-chain deterministically enough for
// tests without reaching into the annealer.
type cancelAfterSteps struct {
	n      int64
	seen   atomic.Int64
	cancel context.CancelFunc
}

func (c *cancelAfterSteps) ObserveStep(StepEvent) {
	if c.seen.Add(1) == c.n {
		c.cancel()
	}
}

func (c *cancelAfterSteps) ObserveChain(ChainEvent) {}

// TestWorkloadPreCancelled: a context cancelled before the call dispatches
// nothing and surfaces the context's error.
func TestWorkloadPreCancelled(t *testing.T) {
	p, _ := workload.ByName("gzip")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Workload(ctx, p, tinyOptions(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestSuiteCancellationLeavesCacheConsistent is the cancellation contract
// end to end: cancelling mid-suite returns context.Canceled with only
// completed outcomes, and because context errors are never memoized, the
// same engine then reproduces — bit for bit — what a fresh engine computes.
func TestSuiteCancellationLeavesCacheConsistent(t *testing.T) {
	var profiles []workload.Profile
	for _, n := range []string{"gzip", "mcf"} {
		p, _ := workload.ByName(n)
		profiles = append(profiles, p)
	}

	// Reference: an uncancelled suite on a fresh engine.
	ref := tinyOptions(27)
	ref.Engine = evalengine.New(evalengine.Options{})
	want, err := Suite(context.Background(), profiles, ref)
	if err != nil {
		t.Fatal(err)
	}

	// The same suite on a second engine, cancelled a few steps in.
	eng := evalengine.New(evalengine.Options{})
	opt := tinyOptions(27)
	opt.Engine = eng
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt.Observer = &cancelAfterSteps{n: 5, cancel: cancel}
	done, err := Suite(ctx, profiles, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Suite returned %v, want context.Canceled", err)
	}
	for _, o := range done {
		if o.Workload == "" {
			t.Fatal("partial outcomes contain an unfinished entry")
		}
	}

	// Re-run uncancelled on the engine the cancelled run touched.
	opt.Observer = nil
	got, err := Suite(context.Background(), profiles, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("suite after a cancelled run diverged from a fresh engine:\n got %+v\nwant %+v", got, want)
	}
}
