// Command combos runs the exhaustive best-core-combination search of §5.2:
// for each core count and figure of merit it prints the winning combination
// (Table 6), the per-benchmark performance under the chosen core sets
// (Figure 4's series), and the dual-core summary (Table 7).
//
// Usage:
//
//	combos [-source paper|sim] [-maxk n] [-figure4] [-summary] [-weights w1,w2,...]
//	       [-trace file] [-metrics-addr addr] [-progress]
//
// Tables go to stdout; diagnostics go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"xpscalar/internal/cli"
	"xpscalar/internal/core"
	"xpscalar/internal/report"
	"xpscalar/internal/session"
)

func main() {
	os.Exit(cli.Main(run))
}

func run(ctx context.Context) error {
	var (
		source      = flag.String("source", "paper", "matrix source: paper or sim")
		maxK        = flag.Int("maxk", 4, "largest core count to search")
		fig4        = flag.Bool("figure4", false, "print per-benchmark IPT under the chosen core sets (Figure 4)")
		summary     = flag.Bool("summary", false, "print the dual-core summary (Table 7)")
		weightsFlag = flag.String("weights", "", "comma-separated importance weights, one per benchmark")
	)
	var rcfg cli.RunConfig
	rcfg.RegisterFlags()
	var tcfg cli.TelemetryConfig
	tcfg.RegisterFlags()
	var lcfg cli.LogConfig
	lcfg.RegisterFlags()
	flag.Parse()
	if err := lcfg.Setup("combos"); err != nil {
		return err
	}

	ctx, stop := rcfg.Context(ctx)
	defer stop()

	sess := session.Default()
	tel, err := cli.StartTelemetry("combos", sess, tcfg)
	defer func() {
		if cerr := tel.Close(); cerr != nil {
			slog.Error(cerr.Error())
		}
	}()
	if err != nil {
		return err
	}
	ctx = tel.Context(ctx)

	mo := cli.DefaultMatrixOptions()
	mo.Telemetry = tel
	mo.Session = sess
	m, err := cli.LoadMatrix(ctx, *source, mo)
	if err != nil {
		return err
	}
	weights, err := parseWeights(*weightsFlag, m.N())
	if err != nil {
		return err
	}

	if *summary {
		return printSummary(m, weights)
	}

	if err := table6(m, *maxK, weights); err != nil {
		return err
	}
	if *fig4 {
		fmt.Println()
		return figure4(m, weights)
	}
	return nil
}

func parseWeights(s string, n int) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("%d weights for %d benchmarks", len(parts), n)
	}
	ws := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad weight %q", p)
		}
		ws[i] = v
	}
	return ws, nil
}

func table6(m *core.Matrix, maxK int, weights []float64) error {
	fmt.Println("Best core combinations (Table 6)")
	tab := &report.Table{Header: []string{"cores", "metric", "combination", "avg IPT", "har IPT"}}
	for k := 1; k <= maxK; k++ {
		for _, metric := range []core.Metric{core.MetricAvg, core.MetricHar, core.MetricCWHar} {
			c, err := m.BestCombination(k, metric, weights)
			if err != nil {
				return err
			}
			tab.AddRow(
				fmt.Sprint(k),
				metric.String(),
				strings.Join(m.ArchNames(c.Archs), ", "),
				fmt.Sprintf("%.3f", c.AvgIPT),
				fmt.Sprintf("%.3f", c.HarIPT),
			)
		}
	}
	all := make([]int, m.N())
	for i := range all {
		all[i] = i
	}
	tab.AddRow(fmt.Sprint(m.N()), "ideal", "each on its own customized arch",
		fmt.Sprintf("%.3f", m.Merit(all, core.MetricAvg, weights)),
		fmt.Sprintf("%.3f", m.Merit(all, core.MetricHar, weights)))
	return tab.Write(os.Stdout)
}

func figure4(m *core.Matrix, weights []float64) error {
	single, err := m.BestCombination(1, core.MetricAvg, weights)
	if err != nil {
		return err
	}
	twoAvg, err := m.BestCombination(2, core.MetricAvg, weights)
	if err != nil {
		return err
	}
	twoHar, err := m.BestCombination(2, core.MetricHar, weights)
	if err != nil {
		return err
	}
	twoCW, err := m.BestCombination(2, core.MetricCWHar, weights)
	if err != nil {
		return err
	}
	all := make([]int, m.N())
	for i := range all {
		all[i] = i
	}
	series := []struct {
		name string
		sel  []int
	}{
		{"best single core", single.Archs},
		{"best 2 for avg IPT", twoAvg.Archs},
		{"best 2 for har IPT", twoHar.Archs},
		{"best 2 for cw-har IPT", twoCW.Archs},
		{"own customized core", all},
	}

	fmt.Println("Per-benchmark IPT on the best available core (Figure 4)")
	header := []string{"workload"}
	for _, s := range series {
		header = append(header, s.name)
	}
	tab := &report.Table{Header: header}
	for w, name := range m.Names {
		row := []string{name}
		for _, s := range series {
			_, ipt := m.BestIn(w, s.sel)
			row = append(row, fmt.Sprintf("%.2f", ipt))
		}
		tab.AddRow(row...)
	}
	return tab.Write(os.Stdout)
}

func printSummary(m *core.Matrix, weights []float64) error {
	all := make([]int, m.N())
	for i := range all {
		all[i] = i
	}
	ideal := m.Merit(all, core.MetricHar, weights)
	single, err := m.BestCombination(1, core.MetricHar, weights)
	if err != nil {
		return err
	}
	complete, err := m.BestCombination(2, core.MetricHar, weights)
	if err != nil {
		return err
	}
	surr, err := core.GreedySurrogates(m, core.PolicyFullPropagation, weights)
	if err != nil {
		return err
	}

	fmt.Println("Dual-core summary (Table 7)")
	tab := &report.Table{Header: []string{"scenario", "har IPT", "slowdown vs ideal"}}
	row := func(name string, har float64) {
		tab.AddRow(name, fmt.Sprintf("%.3f", har), fmt.Sprintf("%.0f%%", (1-har/ideal)*100))
	}
	row("ideal (own customized arch each)", ideal)
	row(fmt.Sprintf("homogeneous (%s)", strings.Join(m.ArchNames(single.Archs), ", ")), single.HarIPT)
	row(fmt.Sprintf("complete search (%s)", strings.Join(m.ArchNames(complete.Archs), ", ")), complete.HarIPT)
	row("greedy surrogates, full propagation", surr.HarmonicIPT())
	return tab.Write(os.Stdout)
}
