// Cross-process trace propagation. A SpanContext is the serializable slice
// of a trace — trace ID, parent span ID, job ID — that one process hands to
// another so the callee's spans can be stitched back under the caller's in
// a merged view. The wire format is three HTTP headers; Inject reads the
// context's current position in the span tree and writes them, Extract
// parses them on the far side, and Handle.BeginRemote stamps the resulting
// SpanContext into the server-side span.
//
// The disabled path stays free: when the context carries no recorder,
// Inject returns after one context lookup without touching the header map,
// preserving the package's 0 allocs/op contract (guarded by
// TestDisabledZeroAllocs and BenchmarkDisabledPropagation).

package tracing

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"time"
)

// The propagation headers. All are optional except the trace ID: a request
// without X-Xpscalar-Trace-Id carries no trace context at all.
const (
	// HeaderTraceID carries the fleet-unique trace ID (16 hex chars).
	HeaderTraceID = "X-Xpscalar-Trace-Id"
	// HeaderParentSpan carries the caller's current span ID (decimal),
	// meaningful within the recorder identified by the trace ID.
	HeaderParentSpan = "X-Xpscalar-Parent-Span"
	// HeaderJobID carries the xpserve job ID the work belongs to.
	HeaderJobID = "X-Xpscalar-Job-Id"
)

// SpanContext is the serializable position in a distributed trace: which
// trace the work belongs to, which span in the originating recorder is the
// logical parent, and which xpserve job (if any) the work serves. The zero
// value means "no trace context".
type SpanContext struct {
	TraceID string
	Span    SpanID
	Job     string
}

// Valid reports whether sc carries a trace at all.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" }

// NewTraceID returns a fresh fleet-unique trace ID: 16 lower-case hex
// characters from a CSPRNG, with a clock-derived fallback if the system
// randomness source fails (uniqueness is best-effort, not security).
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return strconv.FormatUint(uint64(time.Now().UnixNano()), 16)
	}
	return hex.EncodeToString(b[:])
}

// jobKey carries a job ID through a context.
type jobKey struct{}

// WithJobID returns ctx carrying the xpserve job ID, so spans and
// propagation headers produced under it can be attributed to the job.
func WithJobID(ctx context.Context, job string) context.Context {
	if job == "" {
		return ctx
	}
	return context.WithValue(ctx, jobKey{}, job)
}

// JobIDFromContext returns the context's job ID ("" when none).
func JobIDFromContext(ctx context.Context) string {
	job, _ := ctx.Value(jobKey{}).(string)
	return job
}

// SpanContextOf captures the context's current trace position: the
// recorder's trace ID, the span new children would attach under, and the
// job ID. The zero SpanContext when the context carries no recorder or the
// recorder has no trace ID.
func SpanContextOf(ctx context.Context) SpanContext {
	h := FromContext(ctx)
	if h.rec == nil {
		return SpanContext{}
	}
	return SpanContext{
		TraceID: h.rec.TraceID(),
		Span:    h.parent,
		Job:     JobIDFromContext(ctx),
	}
}

// Inject writes the context's trace position into hdr. When the context
// carries no recorder (tracing disabled) it returns without touching hdr
// and without allocating.
func Inject(ctx context.Context, hdr http.Header) {
	h := FromContext(ctx)
	if h.rec == nil {
		return
	}
	sc := SpanContext{TraceID: h.rec.TraceID(), Span: h.parent, Job: JobIDFromContext(ctx)}
	if !sc.Valid() {
		return
	}
	hdr.Set(HeaderTraceID, sc.TraceID)
	if sc.Span != 0 {
		hdr.Set(HeaderParentSpan, strconv.FormatUint(uint64(sc.Span), 10))
	}
	if sc.Job != "" {
		hdr.Set(HeaderJobID, sc.Job)
	}
}

// Extract parses the propagation headers. The zero SpanContext when the
// request carries none; a malformed parent-span header degrades to 0
// rather than failing the request — propagation is observability, never a
// correctness dependency.
func Extract(hdr http.Header) SpanContext {
	traceID := hdr.Get(HeaderTraceID)
	if traceID == "" {
		return SpanContext{}
	}
	sc := SpanContext{TraceID: traceID, Job: hdr.Get(HeaderJobID)}
	if v := hdr.Get(HeaderParentSpan); v != "" {
		if id, err := strconv.ParseUint(v, 10, 64); err == nil {
			sc.Span = SpanID(id)
		}
	}
	return sc
}
