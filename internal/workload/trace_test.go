package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	p, _ := ByName("gcc")
	gen, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 5000
	if err := WriteTrace(&buf, gen, n); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("trace length %d, want %d", tr.Len(), n)
	}

	// The replay must be bit-identical to a fresh generator.
	gen.Reset()
	var a, b Instr
	for i := 0; i < n; i++ {
		gen.Next(&a)
		tr.Next(&b)
		if a != b {
			t.Fatalf("replay diverges at %d:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestTraceWrapsAround(t *testing.T) {
	p, _ := ByName("gzip")
	gen, _ := NewGenerator(p)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, gen, 100); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var first, again Instr
	tr.Next(&first)
	for i := 0; i < 99; i++ {
		tr.Next(&again)
	}
	tr.Next(&again) // instruction 101 wraps to the first
	if first != again {
		t.Errorf("wraparound replay differs:\n%+v\n%+v", first, again)
	}
	tr.Reset()
	var reset Instr
	tr.Next(&reset)
	if reset != first {
		t.Error("Reset did not rewind")
	}
}

func TestWriteTraceRejectsBadLength(t *testing.T) {
	p, _ := ByName("gzip")
	gen, _ := NewGenerator(p)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, gen, 0); err == nil {
		t.Error("accepted zero-length trace")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("short")); err == nil {
		t.Error("accepted truncated header")
	}
	if _, err := ReadTrace(strings.NewReader("WRONGMAG" + strings.Repeat("\x00", 100))); err == nil {
		t.Error("accepted bad magic")
	}
	// Valid header claiming more records than present.
	var buf bytes.Buffer
	buf.Write(traceMagic[:])
	buf.Write([]byte{10, 0, 0, 0, 0, 0, 0, 0})
	if _, err := ReadTrace(&buf); err == nil {
		t.Error("accepted truncated body")
	}
}
