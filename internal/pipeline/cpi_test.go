package pipeline

import (
	"testing"

	"xpscalar/internal/bpred"
	"xpscalar/internal/cache"
	"xpscalar/internal/timing"
	"xpscalar/internal/workload"
)

// sliceRecorder captures interval records in order; tests compare the
// sequences directly.
type sliceRecorder struct {
	recs []IntervalRecord
}

func (r *sliceRecorder) RecordInterval(rec IntervalRecord) { r.recs = append(r.recs, rec) }

// cpiParams are the configurations the accounting property tests sweep:
// the lane variants (width, IQ, wakeup, ROB, latency, ports, front end)
// plus deliberately starved shapes that force the back-pressure buckets.
func cpiParams() []Params {
	ps := laneParams(8)
	tiny := baseParams()
	tiny.Width, tiny.ROBSize, tiny.IQSize, tiny.LSQSize = 1, 8, 4, 2
	deep := baseParams()
	deep.FrontEndStages, deep.SchedStages, deep.WakeupExtra = 14, 4, 3
	return append(ps, tiny, deep)
}

// runWithCPI simulates n instructions of prof on a fresh armed core and
// returns the result plus its CPI stack.
func runWithCPI(t *testing.T, p Params, prof workload.Profile, n int, intro *Introspection) (Result, CPIStack) {
	t.Helper()
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := bpred.New(bpred.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mem, err := cache.NewHierarchy(
		timing.CacheGeom{Sets: 512, Assoc: 2, BlockBytes: 32},
		timing.CacheGeom{Sets: 2048, Assoc: 4, BlockBytes: 128},
	)
	if err != nil {
		t.Fatal(err)
	}
	var core Core
	core.SetIntrospection(intro)
	res, err := core.Run(p, gen, pred, mem, n)
	if err != nil {
		t.Fatal(err)
	}
	return res, core.LastCPI()
}

// TestCPIStackSumsToCycles is the accounting invariant: with introspection
// armed, every simulated cycle lands in exactly one bucket, so the stack
// sums to Result.Cycles — across configurations, workloads, instruction
// counts, and both source kinds (generator and trace replay).
func TestCPIStackSumsToCycles(t *testing.T) {
	intro := &Introspection{}
	for _, name := range []string{"gcc", "mcf"} {
		prof, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("%s profile missing", name)
		}
		for pi, p := range cpiParams() {
			for _, n := range []int{200, 1300, 20000} {
				res, stack := runWithCPI(t, p, prof, n, intro)
				if got := stack.Cycles(); got != res.Cycles {
					t.Errorf("%s cfg %d n=%d (generator): stack sums to %d, want Cycles=%d (stack %v)",
						name, pi, n, got, res.Cycles, stack)
				}

				// Trace-replay source: same invariant, identical stack.
				src, err := workload.NewGenerator(prof)
				if err != nil {
					t.Fatal(err)
				}
				tr := workload.NewTraceReaderFrom(src, n)
				pred, _ := bpred.New(bpred.DefaultConfig())
				mem, err := cache.NewHierarchy(
					timing.CacheGeom{Sets: 512, Assoc: 2, BlockBytes: 32},
					timing.CacheGeom{Sets: 2048, Assoc: 4, BlockBytes: 128},
				)
				if err != nil {
					t.Fatal(err)
				}
				var core Core
				core.SetIntrospection(intro)
				res2, err := core.Run(p, tr, pred, mem, n)
				if err != nil {
					t.Fatal(err)
				}
				if res2 != res {
					t.Errorf("%s cfg %d n=%d: trace result %+v != generator result %+v",
						name, pi, n, res2, res)
				}
				if got := core.LastCPI(); got != stack {
					t.Errorf("%s cfg %d n=%d: trace stack %v != generator stack %v",
						name, pi, n, got, stack)
				}
			}
		}
	}
}

// TestIntrospectionPreservesResult proves arming introspection changes no
// simulated outcome: results are bit-identical on and off, including the
// pinned golden point.
func TestIntrospectionPreservesResult(t *testing.T) {
	prof, _ := workload.ByName("gcc")
	rec := &sliceRecorder{}
	for _, p := range cpiParams() {
		off, _ := runWithCPI(t, p, prof, 5000, nil)
		on, stack := runWithCPI(t, p, prof, 5000, &Introspection{Interval: 500, Recorder: rec})
		if on != off {
			t.Errorf("cfg %+v: introspection on %+v != off %+v", p, on, off)
		}
		if stack.Cycles() != on.Cycles {
			t.Errorf("cfg %+v: armed stack sums to %d, want %d", p, stack.Cycles(), on.Cycles)
		}
	}

	var armed Core
	armed.SetIntrospection(&Introspection{})
	if got := goldenRun(t, &armed); got != goldenResult {
		t.Errorf("golden with introspection diverged:\n got  %#v\nwant %#v", got, goldenResult)
	}
	if got := armed.LastCPI().Cycles(); got != goldenResult.Cycles {
		t.Errorf("golden stack sums to %d, want %d", got, goldenResult.Cycles)
	}

	// Disarming again must fully rewind the introspection state.
	armed.SetIntrospection(nil)
	if got := goldenRun(t, &armed); got != goldenResult {
		t.Errorf("golden after disarm diverged: %#v", got)
	}
	if got := armed.LastCPI(); got != (CPIStack{}) {
		t.Errorf("disarmed core reports stack %v, want zeros", got)
	}
}

// TestCPIBucketsCoverStallCauses checks the classifier actually uses its
// buckets: starved shapes must attribute cycles to the structure that
// starves them, and a memory-bound profile must show load stalls.
func TestCPIBucketsCoverStallCauses(t *testing.T) {
	prof, _ := workload.ByName("mcf")
	intro := &Introspection{}

	// Starved structures + a pipelined wakeup loop: the head spends real
	// cycles dispatched-but-unissued while dispatch is blocked, which is
	// the (root-cause) condition the back-pressure buckets charge. A full
	// ROB behind a stalled head load is charged to the load, not the ROB.
	tiny := baseParams()
	tiny.Width, tiny.ROBSize, tiny.IQSize, tiny.LSQSize = 2, 8, 4, 2
	tiny.WakeupExtra, tiny.SchedStages = 3, 2
	_, stack := runWithCPI(t, tiny, prof, 20000, intro)
	for _, b := range []Bucket{BucketROBFull, BucketIQFull, BucketLSQFull, BucketStorePort} {
		if stack[b] == 0 {
			t.Errorf("starved config shows no %s cycles: %v", b, stack)
		}
	}
	if stack[BucketLoadL2]+stack[BucketLoadMem] == 0 {
		t.Errorf("mcf shows no L2/memory load stalls: %v", stack)
	}

	deep := baseParams()
	deep.FrontEndStages = 14
	_, stack = runWithCPI(t, deep, prof, 20000, intro)
	if stack[BucketFetch] == 0 {
		t.Errorf("deep front end shows no fetch bubbles: %v", stack)
	}
	if stack[BucketMispredict] == 0 {
		t.Errorf("deep front end shows no mispredict penalty: %v", stack)
	}
	if stack[BucketBase] == 0 {
		t.Errorf("no base cycles at all: %v", stack)
	}
}

// TestLockstepLaneCPIMatchesScalar extends the lockstep contract to the
// introspection layer: each lane's CPI stack equals the same configuration
// run scalar over the same stream.
func TestLockstepLaneCPIMatchesScalar(t *testing.T) {
	prof, _ := workload.ByName("gcc")
	const n = 7000
	for _, k := range []int{1, 2, 8} {
		ps := laneParams(k)
		preds, mems := lockstepFixtures(t, k)
		gen, err := workload.NewGenerator(prof)
		if err != nil {
			t.Fatal(err)
		}
		var m MultiCore
		m.SetIntrospection(0, nil)
		got := make([]Result, k)
		if err := m.Run(got, ps, gen, preds, mems, n); err != nil {
			t.Fatalf("k=%d: lockstep: %v", k, err)
		}
		for i := 0; i < k; i++ {
			want, wantStack := runWithCPI(t, ps[i], prof, n, &Introspection{})
			if got[i] != want {
				t.Errorf("k=%d lane %d: lockstep result %+v != scalar %+v", k, i, got[i], want)
			}
			if lane := m.LaneCPI(i); lane != wantStack {
				t.Errorf("k=%d lane %d: lockstep stack %v != scalar %v", k, i, lane, wantStack)
			}
		}
	}
}

// TestIntervalDeterminism pins the sampling contract: identical
// stream+config produce identical record sequences across runs; records
// are cumulative with the sum invariant holding at every snapshot; the
// closing record equals the run's Result.
func TestIntervalDeterminism(t *testing.T) {
	prof, _ := workload.ByName("gcc")
	p := baseParams()
	const n, every = 20000, 1000

	rec1 := &sliceRecorder{}
	res, _ := runWithCPI(t, p, prof, n, &Introspection{Interval: every, Recorder: rec1})
	rec2 := &sliceRecorder{}
	runWithCPI(t, p, prof, n, &Introspection{Interval: every, Recorder: rec2})

	if len(rec1.recs) != len(rec2.recs) {
		t.Fatalf("record counts differ across runs: %d vs %d", len(rec1.recs), len(rec2.recs))
	}
	for i := range rec1.recs {
		if rec1.recs[i] != rec2.recs[i] {
			t.Errorf("record %d differs across runs:\n %+v\n %+v", i, rec1.recs[i], rec2.recs[i])
		}
	}

	if len(rec1.recs) < 2 {
		t.Fatalf("expected multiple interval records, got %d", len(rec1.recs))
	}
	var prev IntervalRecord
	for i, r := range rec1.recs {
		if r.Stack.Cycles() != r.Cycles {
			t.Errorf("record %d: stack sums to %d, want %d", i, r.Stack.Cycles(), r.Cycles)
		}
		if r.Instructions < prev.Instructions || r.Cycles < prev.Cycles {
			t.Errorf("record %d not cumulative: %+v after %+v", i, r, prev)
		}
		prev = r
	}
	last := rec1.recs[len(rec1.recs)-1]
	want := IntervalRecord{
		Instructions: res.Instructions,
		Cycles:       res.Cycles,
		Stack:        last.Stack,
		Branch:       res.Branch,
		L1:           res.L1,
		L2:           res.L2,
		LoadsL1:      res.LoadsL1,
		LoadsL2:      res.LoadsL2,
		LoadsMem:     res.LoadsMem,
	}
	if last != want {
		t.Errorf("closing record %+v != result totals %+v", last, want)
	}
}

// TestLockstepIntervalsMatchScalar: per-lane interval sequences from a
// lockstep run equal the sequences the same configurations produce scalar.
func TestLockstepIntervalsMatchScalar(t *testing.T) {
	prof, _ := workload.ByName("gcc")
	const n, every = 7000, 500
	for _, k := range []int{1, 2, 8} {
		ps := laneParams(k)
		preds, mems := lockstepFixtures(t, k)
		gen, err := workload.NewGenerator(prof)
		if err != nil {
			t.Fatal(err)
		}
		recs := make([]IntervalRecorder, k)
		lanes := make([]*sliceRecorder, k)
		for i := range recs {
			lanes[i] = &sliceRecorder{}
			recs[i] = lanes[i]
		}
		var m MultiCore
		m.SetIntrospection(every, recs)
		got := make([]Result, k)
		if err := m.Run(got, ps, gen, preds, mems, n); err != nil {
			t.Fatalf("k=%d: lockstep: %v", k, err)
		}
		for i := 0; i < k; i++ {
			ref := &sliceRecorder{}
			runWithCPI(t, ps[i], prof, n, &Introspection{Interval: every, Recorder: ref})
			if len(lanes[i].recs) != len(ref.recs) {
				t.Fatalf("k=%d lane %d: %d records != scalar %d", k, i, len(lanes[i].recs), len(ref.recs))
			}
			for j := range ref.recs {
				if lanes[i].recs[j] != ref.recs[j] {
					t.Errorf("k=%d lane %d record %d: lockstep %+v != scalar %+v",
						k, i, j, lanes[i].recs[j], ref.recs[j])
				}
			}
		}
	}
}

// TestStackMapRoundTrip covers the exchange form used by trace events.
func TestStackMapRoundTrip(t *testing.T) {
	var s CPIStack
	for i := range s {
		s[i] = uint64(i+1) * 7
	}
	if got := StackFromMap(s.Map()); got != s {
		t.Errorf("round trip %v != %v", got, s)
	}
	if s.Share(BucketBase) <= 0 {
		t.Errorf("share of base should be positive")
	}
	names := map[string]bool{}
	for b := Bucket(0); int(b) < NumBuckets; b++ {
		name := b.String()
		if name == "invalid" || names[name] {
			t.Errorf("bucket %d has bad or duplicate name %q", b, name)
		}
		names[name] = true
	}
}
