package cacti

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xpscalar/internal/tech"
)

func mustAccess(t *testing.T, p Params) Result {
	t.Helper()
	r, err := Access(p, tech.Default())
	if err != nil {
		t.Fatalf("Access(%+v) = %v", p, err)
	}
	return r
}

func ramParams(sets, assoc, line int) Params {
	return Params{LineBytes: line, Assoc: assoc, Sets: sets, ReadPorts: 2, WritePorts: 2}
}

func camParams(entries, line int) Params {
	return Params{LineBytes: line, Sets: entries, ReadPorts: 2, WritePorts: 2, FullyAssoc: true}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []Params{
		{LineBytes: 0, Assoc: 1, Sets: 16, ReadPorts: 1},
		{LineBytes: 8, Assoc: 0, Sets: 16, ReadPorts: 1},
		{LineBytes: 8, Assoc: 1, Sets: 0, ReadPorts: 1},
		{LineBytes: 8, Assoc: 1, Sets: 16, ReadPorts: -1},
		{LineBytes: 8, Assoc: 1, Sets: 16}, // no ports
	}
	for _, p := range cases {
		if _, err := Access(p, tech.Default()); err == nil {
			t.Errorf("Access(%+v) accepted malformed params", p)
		}
	}
}

func TestAccessComponentsPositiveAndOrdered(t *testing.T) {
	for _, p := range []Params{
		ramParams(1024, 2, 32),
		ramParams(16384, 1, 8),
		camParams(64, 8),
	} {
		r := mustAccess(t, p)
		if r.AccessNs <= 0 || r.DataPathNoOutputNs <= 0 {
			t.Errorf("%+v: non-positive delays %+v", p, r)
		}
		if r.DataPathNoOutputNs >= r.AccessNs {
			t.Errorf("%+v: data path %v must be below full access %v (output drive)", p, r.DataPathNoOutputNs, r.AccessNs)
		}
		if r.TagCompareNs > r.DataPathNoOutputNs {
			t.Errorf("%+v: tag compare %v exceeds data path %v", p, r.TagCompareNs, r.DataPathNoOutputNs)
		}
		if r.AreaMm2 <= 0 || r.EnergyNJ <= 0 {
			t.Errorf("%+v: non-positive area/energy %+v", p, r)
		}
	}
}

func TestDirectMappedHasNoTagCompare(t *testing.T) {
	r := mustAccess(t, ramParams(256, 1, 8))
	if r.TagCompareNs != 0 {
		t.Errorf("direct-mapped RAM tag compare = %v, want 0", r.TagCompareNs)
	}
}

func TestCapacityMonotonicity(t *testing.T) {
	// Bigger arrays must never be faster (Figure 2's premise).
	prev := 0.0
	for sets := 64; sets <= 65536; sets *= 2 {
		r := mustAccess(t, ramParams(sets, 2, 32))
		if r.AccessNs < prev {
			t.Fatalf("access time decreased at %d sets: %v < %v", sets, r.AccessNs, prev)
		}
		prev = r.AccessNs
	}
}

func TestAssociativityCostsDelay(t *testing.T) {
	dm := mustAccess(t, ramParams(1024, 1, 32))
	sa := mustAccess(t, ramParams(512, 2, 32)) // same capacity
	if sa.AccessNs <= dm.AccessNs {
		t.Errorf("2-way (%.3f) should be slower than direct-mapped (%.3f) at equal capacity", sa.AccessNs, dm.AccessNs)
	}
}

func TestPortsCostDelayAndArea(t *testing.T) {
	few := mustAccess(t, Params{LineBytes: 8, Assoc: 1, Sets: 256, ReadPorts: 2, WritePorts: 1})
	many := mustAccess(t, Params{LineBytes: 8, Assoc: 1, Sets: 256, ReadPorts: 8, WritePorts: 4})
	if many.AccessNs <= few.AccessNs {
		t.Errorf("12-port access %.3f should exceed 3-port %.3f", many.AccessNs, few.AccessNs)
	}
	if many.AreaMm2 <= few.AreaMm2 {
		t.Errorf("12-port area %.5f should exceed 3-port %.5f", many.AreaMm2, few.AreaMm2)
	}
}

func TestCAMScalesWorseThanRAM(t *testing.T) {
	// Growing a CAM 8x should cost more delay than growing an
	// equal-capacity direct-mapped RAM 8x — the reason issue queues stay
	// small while ROBs grow large (paper Table 4: IQ<=64 vs ROB<=1024).
	camSmall := mustAccess(t, camParams(32, 8))
	camBig := mustAccess(t, camParams(256, 8))
	ramSmall := mustAccess(t, ramParams(32, 1, 8))
	ramBig := mustAccess(t, ramParams(256, 1, 8))
	camGrowth := camBig.AccessNs - camSmall.AccessNs
	ramGrowth := ramBig.AccessNs - ramSmall.AccessNs
	if camGrowth <= ramGrowth {
		t.Errorf("CAM growth %.3fns should exceed RAM growth %.3fns", camGrowth, ramGrowth)
	}
}

func TestFasterTechnologyIsFaster(t *testing.T) {
	base := tech.Default()
	fast := base.Scale(0.7)
	p := ramParams(1024, 2, 32)
	rb, err := Access(p, base)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Access(p, fast)
	if err != nil {
		t.Fatal(err)
	}
	if rf.AccessNs >= rb.AccessNs {
		t.Errorf("scaled tech access %.3f should beat base %.3f", rf.AccessNs, rb.AccessNs)
	}
}

func TestEntriesAndCapacity(t *testing.T) {
	p := ramParams(128, 4, 64)
	if got := p.Entries(); got != 512 {
		t.Errorf("Entries() = %d, want 512", got)
	}
	if got := p.CapacityBytes(); got != 128*4*64 {
		t.Errorf("CapacityBytes() = %d, want %d", got, 128*4*64)
	}
	c := camParams(48, 8)
	if got := c.Entries(); got != 48 {
		t.Errorf("CAM Entries() = %d, want 48", got)
	}
}

// TestQuickMonotoneInSize property-checks that doubling the set count of a
// random well-formed array never reduces access time.
func TestQuickMonotoneInSize(t *testing.T) {
	techP := tech.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sets := 16 << rng.Intn(8)
		assoc := []int{1, 2, 4, 8}[rng.Intn(4)]
		line := []int{8, 16, 32, 64, 128}[rng.Intn(5)]
		ports := 1 + rng.Intn(6)
		small := Params{LineBytes: line, Assoc: assoc, Sets: sets, ReadPorts: ports, WritePorts: 1}
		big := small
		big.Sets *= 2
		rs, err1 := Access(small, techP)
		rb, err2 := Access(big, techP)
		if err1 != nil || err2 != nil {
			return false
		}
		return rb.AccessNs >= rs.AccessNs && rb.AreaMm2 > rs.AreaMm2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCAMMonotone property-checks CAM monotonicity in entry count.
func TestQuickCAMMonotone(t *testing.T) {
	techP := tech.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		entries := 8 << rng.Intn(7)
		line := []int{8, 16}[rng.Intn(2)]
		small := Params{LineBytes: line, Sets: entries, ReadPorts: 2, WritePorts: 2, FullyAssoc: true}
		big := small
		big.Sets *= 2
		rs, err1 := Access(small, techP)
		rb, err2 := Access(big, techP)
		if err1 != nil || err2 != nil {
			return false
		}
		return rb.AccessNs >= rs.AccessNs && rb.TagCompareNs >= rs.TagCompareNs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRAMAccess(b *testing.B) {
	p := ramParams(8192, 4, 64)
	techP := tech.Default()
	for i := 0; i < b.N; i++ {
		if _, err := Access(p, techP); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCAMAccess(b *testing.B) {
	p := camParams(128, 8)
	techP := tech.Default()
	for i := 0; i < b.N; i++ {
		if _, err := Access(p, techP); err != nil {
			b.Fatal(err)
		}
	}
}
