package xpscalar

import (
	"context"
	"fmt"
	"math"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	// The public workflow, end to end on a small budget: characterize,
	// simulate, explore, cross-configure, analyze.
	tech := DefaultTech()
	profiles := Suite()
	if len(profiles) != 11 || len(SuiteNames()) != 11 {
		t.Fatalf("suite size %d", len(profiles))
	}

	gzip, ok := WorkloadByName("gzip")
	if !ok {
		t.Fatal("no gzip")
	}
	c, err := Characterize(gzip, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if c.WorkingSetBlocks <= 0 {
		t.Error("empty characterization")
	}

	cfg := InitialConfig(tech)
	res, err := Run(cfg, gzip, 10_000, tech)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPT() <= 0 {
		t.Error("non-positive IPT")
	}

	opt := DefaultExploreOptions(3)
	opt.Iterations = 8
	opt.Chains = 1
	opt.ShortBudget = 2000
	opt.LongBudget = 4000
	out, err := Explore(context.Background(), gzip, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.BestIPT <= 0 {
		t.Error("exploration found nothing")
	}

	mcf, _ := WorkloadByName("mcf")
	m, err := CrossMatrix(context.Background(), []Profile{gzip, mcf}, []Config{out.Best, out.Best}, 5_000, tech)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 2 {
		t.Errorf("matrix size %d", m.N())
	}
}

func TestFacadePaperAnalyses(t *testing.T) {
	m, err := PaperMatrix()
	if err != nil {
		t.Fatal(err)
	}
	pair, err := m.BestCombination(2, MetricHar, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pair.HarIPT-1.882) > 0.01 {
		t.Errorf("dual-core har %.3f, want 1.882", pair.HarIPT)
	}
	g, err := GreedySurrogates(m, PolicyFullPropagation, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.RemainingArchs()) != 2 {
		t.Errorf("full propagation heads = %d, want 2", len(g.RemainingArchs()))
	}

	sys, err := MTSystemFromSelection(m, pair.Archs)
	if err != nil {
		t.Fatal(err)
	}
	met, err := MTSimulate(context.Background(), sys, MTArrivals{Jobs: 200, MeanInterarrival: 50, MeanWork: 40, Seed: 1}, StallForDesignated)
	if err != nil {
		t.Fatal(err)
	}
	if met.Jobs != 200 {
		t.Errorf("jobs %d", met.Jobs)
	}

	part, err := BPMST(m, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MTSystemFromPartition(m, part); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFitHelpers(t *testing.T) {
	tech := DefaultTech()
	if got := FitIQ(0.33, 1, 3, tech); got < 32 {
		t.Errorf("FitIQ at Table 3 point = %d, want >= 64-ish", got)
	}
	if FitROB(0.33, 1, 3, tech) <= 0 || FitLSQ(0.33, 2, tech) <= 0 {
		t.Error("fit helpers returned nothing at the Table 3 point")
	}
	if g := MaxCache(0.33, 4, 1, tech); g.Sets == 0 {
		t.Error("no L1 fits 4 cycles at 0.33ns")
	}
	if FrontEndStages(0.33, tech) != 6 {
		t.Errorf("FrontEndStages(0.33) = %d, want 6 (Table 3)", FrontEndStages(0.33, tech))
	}
	if mc := MemoryCycles(0.33, tech); mc < 150 || mc > 195 {
		t.Errorf("MemoryCycles(0.33) = %d, want ~172", mc)
	}
}

// ExamplePaperMatrix demonstrates loading the published Table 5 and running
// the dual-core combination search of Table 6.
func ExamplePaperMatrix() {
	m, err := PaperMatrix()
	if err != nil {
		panic(err)
	}
	pair, err := m.BestCombination(2, MetricHar, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v har=%.2f\n", m.ArchNames(pair.Archs), pair.HarIPT)
	// Output: [gcc mcf] har=1.88
}

// ExampleGreedySurrogates demonstrates the full-propagation surrogate
// reduction of Figure 7.
func ExampleGreedySurrogates() {
	m, err := PaperMatrix()
	if err != nil {
		panic(err)
	}
	g, err := GreedySurrogates(m, PolicyFullPropagation, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("heads=%v har=%.2f\n", m.ArchNames(g.RemainingArchs()), g.HarmonicIPT())
	// Output: heads=[twolf gzip] har=1.74
}
