package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// The live endpoint must serve non-empty Prometheus text and parseable
// JSON while the process runs.
func TestListenAndServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("xp_requests_total", "requests").Add(3)
	r.Histogram("xp_latency_seconds", "", []float64{0.1, 1}).Observe(0.5)

	srv, err := ListenAndServe("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := string(body)
	if !strings.Contains(text, "xp_requests_total 3") {
		t.Errorf("/metrics missing counter sample:\n%s", text)
	}
	if !strings.Contains(text, `xp_latency_seconds_bucket{le="1"} 1`) {
		t.Errorf("/metrics missing histogram bucket:\n%s", text)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	err = json.NewDecoder(resp.Body).Decode(&decoded)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := decoded["xp_requests_total"].(float64); !ok || got != 3 {
		t.Errorf("/metrics.json xp_requests_total = %v", decoded["xp_requests_total"])
	}

	resp, err = http.Get("http://" + srv.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
}

// The operational endpoints: /healthz answers ok, /buildinfo identifies
// the build, and the pprof index is mounted on the custom mux.
func TestOperationalEndpoints(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	var bi map[string]string
	err = json.NewDecoder(resp.Body).Decode(&bi)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if bi["go_version"] == "" {
		t.Errorf("/buildinfo missing go_version: %v", bi)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/ = %d, body lacks profile index", resp.StatusCode)
	}
}

func TestListenAndServeBadAddr(t *testing.T) {
	if _, err := ListenAndServe("256.256.256.256:0", NewRegistry()); err == nil {
		t.Error("binding an invalid address did not fail")
	}
}

func TestServerCloseNil(t *testing.T) {
	var s *Server
	if err := s.Close(); err != nil {
		t.Errorf("nil server Close() = %v", err)
	}
}
