package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xpscalar/internal/paperdata"
)

func paperMatrix(t testing.TB) *Matrix {
	t.Helper()
	m, err := NewMatrix(paperdata.Benchmarks, paperdata.Table5IPT)
	if err != nil {
		t.Fatalf("paper matrix: %v", err)
	}
	return m
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(nil, nil); err == nil {
		t.Error("accepted empty matrix")
	}
	if _, err := NewMatrix([]string{"a", "b"}, [][]float64{{1, 2}}); err == nil {
		t.Error("accepted wrong row count")
	}
	if _, err := NewMatrix([]string{"a", "b"}, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("accepted ragged rows")
	}
	if _, err := NewMatrix([]string{"a", "b"}, [][]float64{{1, 0}, {3, 4}}); err == nil {
		t.Error("accepted non-positive IPT")
	}
	if _, err := NewMatrix([]string{"a", "a"}, [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Error("accepted duplicate names")
	}
}

func TestIndexLookup(t *testing.T) {
	m := paperMatrix(t)
	if got := m.Index("mcf"); got != 5 {
		t.Errorf("Index(mcf) = %d, want 5", got)
	}
	if got := m.Index("nosuch"); got != -1 {
		t.Errorf("Index(nosuch) = %d, want -1", got)
	}
}

func TestSlowdownMatchesAppendixA(t *testing.T) {
	// Spot-check the published Appendix A percentages (derived from
	// Table 5, so agreement is to the paper's rounding).
	m := paperMatrix(t)
	cases := []struct {
		w, a string
		want float64 // published percentage
	}{
		{"bzip", "twolf", 3.1},
		{"bzip", "gzip", 33},
		{"gzip", "bzip", 43},
		{"vortex", "parser", 0.5},
		{"mcf", "gzip", 68},
		{"crafty", "vortex", 8},
		{"twolf", "vpr", 3.2},
		{"perl", "crafty", 2},
	}
	for _, tc := range cases {
		got := m.Slowdown(m.Index(tc.w), m.Index(tc.a)) * 100
		if math.Abs(got-tc.want) > 1.0 {
			t.Errorf("slowdown(%s on %s) = %.1f%%, paper %.1f%%", tc.w, tc.a, got, tc.want)
		}
	}
	// Diagonal is zero by definition.
	for i := 0; i < m.N(); i++ {
		if m.Slowdown(i, i) != 0 {
			t.Errorf("self-slowdown of %s = %v", m.Names[i], m.Slowdown(i, i))
		}
	}
}

func TestSlowdownMatrixShape(t *testing.T) {
	m := paperMatrix(t)
	s := m.SlowdownMatrix()
	if len(s) != m.N() {
		t.Fatalf("slowdown matrix has %d rows", len(s))
	}
	// mcf suffers the worst cross-configuration slowdowns (~50-68%),
	// the paper's headline observation in §5.1.
	worst := 0.0
	for a := 0; a < m.N(); a++ {
		if a != m.Index("mcf") && s[m.Index("mcf")][a] > worst {
			worst = s[m.Index("mcf")][a]
		}
	}
	if worst < 0.5 {
		t.Errorf("mcf worst slowdown %.2f, paper reports up to ~68%%", worst)
	}
}

func TestBestInPicksMaximum(t *testing.T) {
	m := paperMatrix(t)
	w := m.Index("bzip")
	arch, ipt := m.BestIn(w, []int{m.Index("gzip"), m.Index("twolf"), m.Index("mcf")})
	if m.Names[arch] != "twolf" || ipt != 3.05 {
		t.Errorf("BestIn = %s/%v, want twolf/3.05", m.Names[arch], ipt)
	}
}

func TestMeritSingleGccMatchesTable6(t *testing.T) {
	m := paperMatrix(t)
	sel := []int{m.Index("gcc")}
	if avg := m.Merit(sel, MetricAvg, nil); math.Abs(avg-2.06) > 0.01 {
		t.Errorf("avg IPT on gcc = %.3f, paper 2.06", avg)
	}
	if har := m.Merit(sel, MetricHar, nil); math.Abs(har-1.57) > 0.01 {
		t.Errorf("har IPT on gcc = %.3f, paper 1.57", har)
	}
}

// TestBestCombinationsReproduceTable6 is the headline exact-reproduction
// test: the exhaustive search over the published Table 5 must select the
// published Table 6 combinations, with merits matching to the paper's
// rounding (the paper's own Table 6 values derive from unrounded data, so a
// ~3.5% tolerance is allowed on the values; the *selections* must be
// exact).
func TestBestCombinationsReproduceTable6(t *testing.T) {
	m := paperMatrix(t)
	cases := []struct {
		k      int
		metric Metric
		want   []string
		avg    float64
		har    float64
	}{
		{1, MetricAvg, []string{"gcc"}, 2.06, 1.57},
		{1, MetricHar, []string{"gcc"}, 2.06, 1.57},
		{2, MetricAvg, []string{"parser", "twolf"}, 2.27, 1.76},
		{2, MetricHar, []string{"gcc", "mcf"}, 2.12, 1.88},
		{2, MetricCWHar, []string{"bzip", "crafty"}, 2.18, 1.87},
		{3, MetricAvg, []string{"crafty", "parser", "twolf"}, 2.35, 1.82},
		{3, MetricHar, []string{"crafty", "mcf", "twolf"}, 2.27, 2.05},
		{4, MetricAvg, []string{"crafty", "mcf", "parser", "twolf"}, 2.32, 2.08},
		{4, MetricHar, []string{"crafty", "mcf", "parser", "twolf"}, 2.32, 2.08},
	}
	for _, tc := range cases {
		c, err := m.BestCombination(tc.k, tc.metric, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := m.ArchNames(c.Archs)
		if len(got) != len(tc.want) {
			t.Fatalf("k=%d %v: got %v, want %v", tc.k, tc.metric, got, tc.want)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("k=%d %v: combination %v, paper %v", tc.k, tc.metric, got, tc.want)
				break
			}
		}
		if rel := math.Abs(c.AvgIPT-tc.avg) / tc.avg; rel > 0.035 {
			t.Errorf("k=%d %v: avg IPT %.3f vs paper %.2f (%.1f%% off)", tc.k, tc.metric, c.AvgIPT, tc.avg, rel*100)
		}
		if rel := math.Abs(c.HarIPT-tc.har) / tc.har; rel > 0.035 {
			t.Errorf("k=%d %v: har IPT %.3f vs paper %.2f (%.1f%% off)", tc.k, tc.metric, c.HarIPT, tc.har, rel*100)
		}
	}
}

func TestIdealSystemMatchesTable6LastRow(t *testing.T) {
	// Every benchmark on its own customized architecture: avg 2.38, har
	// 2.12 (Table 6 last row; tolerance for the paper's rounding).
	m := paperMatrix(t)
	all := make([]int, m.N())
	for i := range all {
		all[i] = i
	}
	if avg := m.Merit(all, MetricAvg, nil); math.Abs(avg-2.38)/2.38 > 0.035 {
		t.Errorf("ideal avg = %.3f, paper 2.38", avg)
	}
	if har := m.Merit(all, MetricHar, nil); math.Abs(har-2.12)/2.12 > 0.035 {
		t.Errorf("ideal har = %.3f, paper 2.12", har)
	}
}

// TestTable7Summary reproduces the dual-core summary table.
func TestTable7Summary(t *testing.T) {
	m := paperMatrix(t)
	exp := paperdata.Table7Expected

	all := make([]int, m.N())
	for i := range all {
		all[i] = i
	}
	ideal := m.Merit(all, MetricHar, nil)
	homog := m.Merit([]int{m.Index("gcc")}, MetricHar, nil)
	complete, err := m.BestCombination(2, MetricHar, nil)
	if err != nil {
		t.Fatal(err)
	}
	surr, err := GreedySurrogates(m, PolicyFullPropagation, nil)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, got, want float64) {
		if math.Abs(got-want)/want > 0.035 {
			t.Errorf("%s har = %.3f, paper %.2f", name, got, want)
		}
	}
	check("ideal", ideal, exp.IdealHar)
	check("homogeneous-gcc", homog, exp.HomogeneousHar)
	check("complete-search", complete.HarIPT, exp.CompleteHar)
	check("surrogate-propagation", surr.HarmonicIPT(), exp.SurrogateHar)

	// Slowdowns versus ideal: absolute tolerance, since a ratio of two
	// rounded quantities amplifies rounding.
	checkAbs := func(name string, got, want float64) {
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s = %.3f, paper %.2f", name, got, want)
		}
	}
	checkAbs("homogeneous slowdown", 1-homog/ideal, exp.HomogeneousSlow)
	checkAbs("complete slowdown", 1-complete.HarIPT/ideal, exp.CompleteSlow)
	checkAbs("surrogate slowdown", 1-surr.HarmonicIPT()/ideal, exp.SurrogateSlow)
}

// TestFigure4LimitedCores reproduces the per-benchmark claims the paper
// makes about Figure 4.
func TestFigure4LimitedCores(t *testing.T) {
	m := paperMatrix(t)
	single, err := m.BestCombination(1, MetricAvg, nil)
	if err != nil {
		t.Fatal(err)
	}
	twoAvg, err := m.BestCombination(2, MetricAvg, nil)
	if err != nil {
		t.Fatal(err)
	}
	twoHar, err := m.BestCombination(2, MetricHar, nil)
	if err != nil {
		t.Fatal(err)
	}

	perf := func(sel []int, w string) float64 {
		_, ipt := m.BestIn(m.Index(w), sel)
		return ipt
	}

	// "twolf and parser display around 40% and 25% speedup respectively
	// over the best single configuration when the best two configurations
	// for average IPT are employed."
	if s := perf(twoAvg.Archs, "twolf")/perf(single.Archs, "twolf") - 1; math.Abs(s-0.45) > 0.1 {
		t.Errorf("twolf speedup with 2-avg cores = %.2f, paper ~0.40-0.45", s)
	}
	if s := perf(twoAvg.Archs, "parser")/perf(single.Archs, "parser") - 1; math.Abs(s-0.26) > 0.06 {
		t.Errorf("parser speedup with 2-avg cores = %.2f, paper ~0.25", s)
	}
	// "mcf attains close to 2x speedup over the best single configuration
	// when the best two cores for harmonic mean performance are
	// available."
	if s := perf(twoHar.Archs, "mcf") / perf(single.Archs, "mcf"); math.Abs(s-2.07) > 0.15 {
		t.Errorf("mcf speedup with 2-har cores = %.2fx, paper ~2x", s)
	}
	// "the availability of the customized architectural configuration of
	// mcf provides hardly any benefit for the other benchmarks (only bzip
	// attains a slight performance enhancement)."
	withMcf := []int{m.Index("gcc"), m.Index("mcf")}
	for _, w := range m.Names {
		if w == "mcf" || w == "bzip" {
			continue
		}
		if perf(withMcf, w) > m.IPT[m.Index(w)][m.Index("gcc")] {
			t.Errorf("%s benefits from mcf's core, paper says only bzip does", w)
		}
	}
	if m.IPT[m.Index("bzip")][m.Index("mcf")] <= m.IPT[m.Index("bzip")][m.Index("gcc")] {
		t.Error("bzip should slightly prefer mcf's core over gcc's")
	}
}

// TestSection53SubsettingPitfall reproduces §5.3: with gzip standing in for
// bzip, the dual-core search picks {bzip... } differently and loses.
func TestSection53SubsettingPitfall(t *testing.T) {
	m := paperMatrix(t)

	// The premise: bzip and gzip are mutually bad surrogates despite
	// their raw similarity — 33% and 43% slowdowns.
	if s := m.Slowdown(m.Index("bzip"), m.Index("gzip")); math.Abs(s-0.33) > 0.01 {
		t.Errorf("bzip on gzip slowdown %.3f, paper 0.33", s)
	}
	if s := m.Slowdown(m.Index("gzip"), m.Index("bzip")); math.Abs(s-0.43) > 0.01 {
		t.Errorf("gzip on bzip slowdown %.3f, paper 0.43", s)
	}

	// Reduced benchmark set: gzip dropped, bzip its representative (the
	// paper's §5.3 scenario, where re-evaluation over the reduced set
	// finds {bzip, crafty} the best dual-core solution).
	reduced := []string{"bzip", "crafty", "gap", "gcc", "mcf", "parser", "perl", "twolf", "vortex", "vpr"}
	sub, err := m.Sub(reduced)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sub.BestCombination(2, MetricHar, nil)
	if err != nil {
		t.Fatal(err)
	}
	reducedPick := sub.ArchNames(c.Archs)
	if len(reducedPick) != 2 || reducedPick[0] != "bzip" || reducedPick[1] != "crafty" {
		t.Errorf("reduced-set dual-core pick = %v, paper finds {bzip, crafty}", reducedPick)
	}

	// Evaluated over ALL benchmarks (including the dropped gzip), the
	// reduced-set choice loses to the full-set winner {gcc, mcf} — the
	// pitfall. Paper: har ~1.87 vs 1.88, a ~0.5% slowdown.
	full, err := m.BestCombination(2, MetricHar, nil)
	if err != nil {
		t.Fatal(err)
	}
	var reducedSel []int
	for _, name := range reducedPick {
		reducedSel = append(reducedSel, m.Index(name))
	}
	lossy := m.Merit(reducedSel, MetricHar, nil)
	if math.Abs(lossy-1.87) > 0.02 {
		t.Errorf("reduced pick full-set har = %.3f, paper ~1.87", lossy)
	}
	slow := 1 - lossy/full.HarIPT
	if slow <= 0 || slow > 0.02 {
		t.Errorf("subsetting pitfall slowdown = %.4f, paper ~0.5%%", slow)
	}
}

func TestWeightsSteerCombination(t *testing.T) {
	// §5.2: "if mcf were to have a considerably lower importance-weight
	// than the other benchmarks, the best two configurations for
	// harmonic-mean performance would potentially be different."
	m := paperMatrix(t)
	weights := make([]float64, m.N())
	for i := range weights {
		weights[i] = 1
	}
	weights[m.Index("mcf")] = 0.02
	weighted, err := m.BestCombination(2, MetricHar, weights)
	if err != nil {
		t.Fatal(err)
	}
	got := m.ArchNames(weighted.Archs)
	if got[0] == "gcc" && got[1] == "mcf" {
		t.Errorf("down-weighting mcf still picked %v", got)
	}
}

func TestSubErrors(t *testing.T) {
	m := paperMatrix(t)
	if _, err := m.Sub([]string{"bzip", "nosuch"}); err == nil {
		t.Error("Sub accepted unknown workload")
	}
}

func TestBestCombinationErrors(t *testing.T) {
	m := paperMatrix(t)
	if _, err := m.BestCombination(0, MetricAvg, nil); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := m.BestCombination(m.N()+1, MetricAvg, nil); err == nil {
		t.Error("accepted k>n")
	}
}

// TestQuickMeritInvariants property-checks the figures of merit on random
// matrices.
func TestQuickMeritInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		names := make([]string, n)
		ipt := make([][]float64, n)
		for i := range names {
			names[i] = string(rune('a' + i))
			ipt[i] = make([]float64, n)
			for j := range ipt[i] {
				ipt[i][j] = 0.2 + rng.Float64()*3
			}
		}
		m, err := NewMatrix(names, ipt)
		if err != nil {
			return false
		}
		// A selection's merit never decreases when the selection grows.
		small := []int{0}
		big := []int{0, 1}
		for _, metric := range []Metric{MetricAvg, MetricHar} {
			if m.Merit(big, metric, nil) < m.Merit(small, metric, nil)-1e-9 {
				return false
			}
		}
		// Harmonic <= average for any selection.
		if m.Merit(big, MetricHar, nil) > m.Merit(big, MetricAvg, nil)+1e-9 {
			return false
		}
		// cw-har with a single core divides by the whole population.
		cw := m.Merit(small, MetricCWHar, nil)
		har := m.Merit(small, MetricHar, nil)
		return math.Abs(cw-har/float64(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBestCombination2(b *testing.B) {
	m := paperMatrix(b)
	for i := 0; i < b.N; i++ {
		if _, err := m.BestCombination(2, MetricHar, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestCombination4(b *testing.B) {
	m := paperMatrix(b)
	for i := 0; i < b.N; i++ {
		if _, err := m.BestCombination(4, MetricHar, nil); err != nil {
			b.Fatal(err)
		}
	}
}
