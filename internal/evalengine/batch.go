// Batch evaluation. Exploration rarely asks for one design point at a
// time: an annealing neighborhood is K one-knob moves around the current
// point, a characterization-matrix row is every customized configuration
// against one profile — always several configurations against ONE
// (workload, budget) pair. EvaluateBatch is the engine face of that shape:
// members that hit the memo cache or join in-flight simulations are served
// exactly as Evaluate serves them, and the members that actually miss are
// run as one lockstep group over one shared instruction stream
// (sim.MultiRunner), so the stream is fetched and transposed once per
// group instead of once per configuration. Results are bit-identical to
// per-member Evaluate calls; only the wall time changes.

package evalengine

import (
	"context"
	"fmt"
	"time"

	"xpscalar/internal/pipeline"
	"xpscalar/internal/power"
	"xpscalar/internal/sim"
	"xpscalar/internal/tech"
	"xpscalar/internal/tracing"
	"xpscalar/internal/workload"
)

// batchClaim is one member's memo-cache classification inside a batch.
type batchClaim struct {
	entry   *memoEntry
	key     Key
	outcome string // "hit", "dedup", "disk", or "miss" (this call owns the entry)
}

// EvaluateBatch evaluates every configuration in cfgs against one
// (workload, budget, technology, objective) tuple — the grouping callers
// already have in hand — writing dst[i] for cfgs[i]. Cache semantics are
// identical to len(cfgs) Evaluate calls: each member counts as a request
// and is served as a hit, an in-flight join, a persistent-tier hit, or a
// miss, and every miss is memoized (errors included) for future callers. What changes is how the
// misses run: two or more valid missing configurations become one lockstep
// group sharing a single replay of the workload's stream; a lone miss, an
// invalid configuration, or a group that fails at the lockstep layer runs
// scalar, so grouping can never change an answer — a lockstep error
// degrades to per-member scalar simulation rather than failing the batch.
//
// The return is the lowest-index member error (nil when every member
// succeeded); dst entries for failed members are zero. Cancellation
// mirrors Evaluate: ctx is checked on entry and while waiting on
// simulations owned by other goroutines, and a context error is never
// memoized. Misses claimed by this call always run to completion.
func (e *Engine) EvaluateBatch(ctx context.Context, dst []Eval, cfgs []sim.Config, p workload.Profile, budget int, t tech.Params, obj power.Objective) error {
	k := len(cfgs)
	if len(dst) != k {
		return fmt.Errorf("evalengine: batch: %d results for %d configs", len(dst), k)
	}
	if k == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	obs := e.obs.Load()
	h := tracing.FromContext(ctx)
	sp := h.Begin(tracing.KindEvalBatch, p.Name, int64(k))
	hb := h.WithParent(sp)

	// Classify every member against the memo cache. Duplicate
	// configurations within the batch resolve naturally: the first claims
	// the miss, the rest join it as dedups and are served once the owned
	// simulations below have closed their entries.
	e.requests.Add(uint64(k))
	be := e.tier()
	claims := make([]batchClaim, k)
	var owned []int // indices whose memo entry this call claimed
	for i := range cfgs {
		key := KeyOf(cfgs[i], p, budget, t, obj)
		me, outcome := e.claim(key)
		claims[i] = batchClaim{entry: me, key: key, outcome: outcome}
		switch outcome {
		case "hit":
			e.hits.Add(1)
		case "dedup":
			e.deduped.Add(1)
		case "miss":
			owned = append(owned, i)
		}
	}

	// Batched read-through: the owned misses go to the persistent tier as
	// ONE multi-get — one sequential disk pass, one POST per remote peer —
	// instead of a round trip per key. A tier hit resolves the claimed
	// entry on the spot (promoting the record into the memory LRU, where
	// claim already inserted it) and never occupies a lockstep lane; only
	// the keys every tier missed go on to simulate.
	var lanes, scalars []int // owned-miss indices: lockstep-eligible vs not
	var found map[Key]Eval
	if be != nil && len(owned) > 0 {
		keys := make([]Key, len(owned))
		for j, i := range owned {
			keys[j] = claims[i].key
		}
		found = backendGetBatch(tracing.ChildContext(ctx, sp), be, keys)
	}
	for _, i := range owned {
		me := claims[i].entry
		if val, ok := found[claims[i].key]; ok {
			e.diskHits.Add(1)
			me.val = val
			close(me.ready)
			claims[i].outcome = "disk"
			continue
		}
		if be != nil {
			e.diskMisses.Add(1)
		}
		e.misses.Add(1)
		if !e.lockstepOff && cfgs[i].Validate(t) == nil {
			lanes = append(lanes, i)
		} else {
			scalars = append(scalars, i)
		}
	}

	// Run the owned misses. Lockstep needs at least two lanes to amortize
	// anything; a singleton goes through the scalar path unchanged.
	if len(lanes) == 1 {
		scalars = append(scalars, lanes[0])
		lanes = nil
	}
	if len(lanes) >= 2 {
		if done := e.runLockstep(hb, lanes, claims, cfgs, p, budget, t, obj, obs); !done {
			scalars = append(scalars, lanes...)
		}
	}
	hist := e.simHist.Load()
	for _, i := range scalars {
		me := claims[i].entry
		var begin time.Time
		if hist != nil || obs != nil {
			begin = time.Now()
		}
		me.val, me.err = e.compute(hb, cfgs[i], p, budget, t, obj)
		close(me.ready)
		if hist != nil || obs != nil {
			wall := time.Since(begin)
			if hist != nil {
				hist.Observe(wall.Seconds())
			}
			if obs != nil {
				(*obs).ObserveEval(record(p.Name, budget, "miss", wall.Nanoseconds(), me.val, me.err))
			}
		}
	}

	// Write-behind: every successful simulation this call owned goes to
	// the persistent tier. Disk-served members are already durable, and
	// errors are never persisted.
	if be != nil {
		for i := range claims {
			if claims[i].outcome == "miss" && claims[i].entry.err == nil {
				be.Put(claims[i].key, claims[i].entry.val)
			}
		}
	}

	// Collect. Every entry owned by this call is closed by now, so waiting
	// here can only block on other goroutines' in-flight simulations —
	// which is the one place cancellation may interrupt a batch.
	var firstErr error
	for i := range claims {
		me := claims[i].entry
		if claims[i].outcome == "dedup" {
			select {
			case <-me.ready:
			case <-ctx.Done():
				h.End(sp)
				return ctx.Err()
			}
		}
		if claims[i].outcome != "miss" && obs != nil {
			(*obs).ObserveEval(record(p.Name, budget, claims[i].outcome, 0, me.val, me.err))
		}
		if me.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("evalengine: batch member %d: %w", i, me.err)
			}
			continue
		}
		dst[i] = me.val
	}
	h.End(sp)
	return firstErr
}

// runLockstep simulates the miss group in lockstep and memoizes each
// lane's result. It reports false — with every lane's entry still open and
// unwritten — when the lockstep layer rejects or fails the group, so the
// caller can degrade those lanes to scalar simulation.
func (e *Engine) runLockstep(h tracing.Handle, lanes []int, claims []batchClaim, cfgs []sim.Config, p workload.Profile, budget int, t tech.Params, obj power.Objective, obs *EvalObserver) bool {
	ssp := h.Begin(tracing.KindSource, p.Name, int64(budget))
	src, err := e.traces.source(p, budget)
	h.End(ssp)
	if err != nil {
		e.scalarFallbacks.Add(1)
		return false
	}
	group := make([]sim.Config, len(lanes))
	results := make([]sim.Result, len(lanes))
	for j, i := range lanes {
		group[j] = cfgs[i]
	}
	hist := e.simHist.Load()
	var begin time.Time
	if hist != nil || obs != nil {
		begin = time.Now()
	}
	mr := e.multis.Get().(*sim.MultiRunner)
	// Re-applied every run, exactly as compute does for scalar runners:
	// pooled MultiRunners must not carry taps across armed/disarmed phases.
	ic := e.intro.Load()
	if ic != nil {
		var recs []pipeline.IntervalRecorder
		if ic.ring != nil && ic.interval > 0 {
			recs = make([]pipeline.IntervalRecorder, len(lanes))
			for j, i := range lanes {
				recs[j] = ic.introspection(p.Name, cfgs[i].String(), j).Recorder
			}
		}
		mr.SetIntrospection(ic.interval, recs)
	} else {
		mr.DisableIntrospection()
	}
	msp := h.Begin(tracing.KindSimulate, p.Name, int64(budget)*int64(len(lanes)))
	err = mr.RunSource(results, group, src, p.Name, budget, t)
	h.End(msp)
	e.multis.Put(mr)
	if err != nil {
		// The stream may have partially advanced; the scalar fallback
		// re-sources each member from the trace store, so nothing here
		// depends on src's position.
		e.scalarFallbacks.Add(1)
		return false
	}
	e.lockstepGroups.Add(1)
	e.lockstepLanes.Add(uint64(len(lanes)))
	if gh := e.groupHist.Load(); gh != nil {
		gh.Observe(float64(len(lanes)))
	}
	// The group's wall time is amortized evenly across its lanes: each
	// lane's observation answers "what did this evaluation cost?", and
	// under lockstep that is the shared run divided by the lanes riding it.
	var wallPer time.Duration
	if hist != nil || obs != nil {
		wallPer = time.Since(begin) / time.Duration(len(lanes))
	}
	for j, i := range lanes {
		me := claims[i].entry
		if ic != nil {
			e.addCPITotals(results[j].CPI)
		}
		score, serr := power.Score(results[j], obj, t)
		if serr != nil {
			me.err = serr
		} else {
			me.val = Eval{Result: results[j], Score: score}
		}
		close(me.ready)
		if hist != nil {
			hist.Observe(wallPer.Seconds())
		}
		if obs != nil {
			(*obs).ObserveEval(record(p.Name, budget, "miss", wallPer.Nanoseconds(), me.val, me.err))
		}
	}
	return true
}
