// The intervals subcommand: render the phase timeline a -intervals run
// recorded. Each JSONL record is a cumulative kernel snapshot taken every
// N committed instructions; the view differences consecutive records into
// per-interval rows — IPC, branch and cache behavior, and the dominant
// CPI bucket of the window — so program phases (a pointer-chasing stretch
// going memory-bound, a predictable loop running at full width) show as
// runs of rows, exactly the interval analysis of the SimPoint line of
// work. Output is deterministic: simulations sort by (workload, config,
// lane) and records by sequence number.

package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"xpscalar/internal/introspect"
	"xpscalar/internal/pipeline"
	"xpscalar/internal/report"
)

func intervalsCmd(args []string) error {
	fs := flag.NewFlagSet("intervals", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("intervals: want exactly one intervals file, got %d args", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	recs, err := introspect.ReadRecords(f)
	f.Close()
	if err != nil {
		return err
	}
	return writeIntervalTimeline(os.Stdout, recs)
}

// writeIntervalTimeline renders one table per simulation, each row the
// delta between consecutive cumulative snapshots.
func writeIntervalTimeline(w io.Writer, recs []introspect.Record) error {
	if len(recs) == 0 {
		_, err := fmt.Fprintln(w, "no interval records (run with -intervals FILE to collect them)")
		return err
	}
	type key struct {
		workload, config string
		lane             int
	}
	groups := map[key][]introspect.Record{}
	for _, r := range recs {
		k := key{r.Workload, r.Config, r.Lane}
		groups[k] = append(groups[k], r)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].workload != keys[j].workload {
			return keys[i].workload < keys[j].workload
		}
		if keys[i].config != keys[j].config {
			return keys[i].config < keys[j].config
		}
		return keys[i].lane < keys[j].lane
	})

	for gi, k := range keys {
		g := groups[k]
		sort.Slice(g, func(i, j int) bool { return g[i].Seq < g[j].Seq })
		if gi > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s on %s (lane %d): %d intervals\n", k.workload, k.config, k.lane, len(g))
		tab := &report.Table{Header: []string{
			"seq", "instrs", "cycles", "ipc", "br-mr", "l1-mpki", "l2-mpki", "dominant",
		}}
		prev := introspect.Record{}
		for _, r := range g {
			di := r.Instructions - prev.Instructions
			dc := r.Cycles - prev.Cycles
			ipc := "—"
			if dc > 0 {
				ipc = fmt.Sprintf("%.3f", float64(di)/float64(dc))
			}
			brMR := "—"
			if dl := r.Branch.Lookups - prev.Branch.Lookups; dl > 0 {
				brMR = fmt.Sprintf("%.1f%%", 100*float64(r.Branch.Mispredicts-prev.Branch.Mispredicts)/float64(dl))
			}
			mpki := func(dm uint64) string {
				if di == 0 {
					return "—"
				}
				return fmt.Sprintf("%.1f", 1000*float64(dm)/float64(di))
			}
			var delta pipeline.CPIStack
			for b := range delta {
				delta[b] = r.Stack[b] - prev.Stack[b]
			}
			dom := dominantBucket(delta)
			domCell := "—"
			if dc > 0 {
				domCell = fmt.Sprintf("%s %.0f%%", dom, 100*float64(delta[dom])/float64(dc))
			}
			tab.AddRow(fmt.Sprint(r.Seq), fmt.Sprint(r.Instructions), fmt.Sprint(r.Cycles),
				ipc, brMR,
				mpki(r.L1.Misses-prev.L1.Misses), mpki(r.L2.Misses-prev.L2.Misses),
				domCell)
			prev = r
		}
		if err := tab.Write(w); err != nil {
			return err
		}
	}
	return nil
}

// dominantBucket picks the interval's largest CPI bucket; ties resolve to
// the lowest bucket index, keeping the view deterministic.
func dominantBucket(s pipeline.CPIStack) pipeline.Bucket {
	best := pipeline.Bucket(0)
	for b := pipeline.Bucket(1); int(b) < pipeline.NumBuckets; b++ {
		if s[b] > s[best] {
			best = b
		}
	}
	return best
}
