// Package session owns one complete, isolated instance of the evaluation
// stack: a memoized engine (cache + trace store + worker pool) plus the
// telemetry hooks wired to it. Before this package existed the engine was
// a process-wide singleton (evalengine.Default()); a Session makes the
// same sharing an explicit, injectable value instead, so tests, servers
// and tools can run isolated sessions side by side — two sessions never
// share a cache, a pool, or an observer.
//
// The xpscalar facade preserves its zero-config API by delegating to a
// lazily created default session (Default); everything underneath takes
// the session — or its engine — explicitly.
package session

import (
	"context"
	"sync"

	"xpscalar/internal/core"
	"xpscalar/internal/evalengine"
	"xpscalar/internal/explore"
	"xpscalar/internal/introspect"
	"xpscalar/internal/power"
	"xpscalar/internal/regression"
	"xpscalar/internal/sim"
	"xpscalar/internal/tech"
	"xpscalar/internal/telemetry"
	"xpscalar/internal/tracing"
	"xpscalar/internal/workload"
)

// Options configures a Session. The zero value selects defaults.
type Options struct {
	// Engine sizes the session's evaluation engine (cache entries,
	// shards, trace cap, pool workers) and carries its optional persistent
	// cache tier (Engine.Backend, typically an evalstore.Store); a session
	// with a backend must be Closed to flush write-behind records.
	Engine evalengine.Options
	// Recorder, when non-nil, records hierarchical execution spans for
	// every run on this session (see internal/tracing). Contexts that
	// already carry a recorder — the CLI installs one rooted at a run
	// span — take precedence; the session's recorder is the programmatic
	// seam. Nil (the default) keeps every instrumented path at its
	// uninstrumented cost.
	Recorder *tracing.Recorder
}

// Session is one instance of the evaluation stack. Safe for concurrent
// use; all methods share the session's engine, so redundant points
// requested by different layers (an annealing chain and a matrix cell,
// say) are simulated once per session.
type Session struct {
	engine *evalengine.Engine
	rec    *tracing.Recorder
}

// New constructs an isolated session.
func New(o Options) *Session {
	return &Session{engine: evalengine.New(o.Engine), rec: o.Recorder}
}

var (
	defaultMu   sync.Mutex
	defaultSess *Session
)

// Default returns the lazily created process-default session, the one the
// xpscalar facade's zero-config API runs on. Code that wants isolation —
// tests, servers hosting several tenants — should construct its own with
// New instead.
func Default() *Session {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultSess == nil {
		defaultSess = New(Options{})
	}
	return defaultSess
}

// SetDefault replaces the process-default session and returns the previous
// one (nil if none had been created). Passing nil resets the lazy slot, so
// the next Default() builds a fresh zero-config session. This is the seam
// tests and tools use to run the facade's zero-config API against a
// configured session — a disk-backed cache, say — and then restore
// isolation afterwards. The caller owns closing the displaced session.
func SetDefault(s *Session) *Session {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	prev := defaultSess
	defaultSess = s
	return prev
}

// Close releases the session's durable resources: it flushes and closes
// the engine's persistent cache tier (a no-op for memory-only sessions).
// The session stays usable afterwards — evaluation continues memory-only —
// so Close is safe on shutdown paths while late work drains. Idempotent.
func (s *Session) Close() error {
	return s.engine.Close()
}

// Flush blocks until every evaluation handed to the persistent cache tier
// is durable. A no-op for memory-only sessions.
func (s *Session) Flush() error {
	return s.engine.Flush()
}

// Engine returns the session's evaluation engine.
func (s *Session) Engine() *evalengine.Engine { return s.engine }

// Recorder returns the session's span recorder (nil when tracing is off).
func (s *Session) Recorder() *tracing.Recorder { return s.rec }

// trace attaches the session's recorder to ctx unless one is already
// installed; with no recorder configured this is a no-op returning ctx.
func (s *Session) trace(ctx context.Context) context.Context {
	return tracing.Ensure(ctx, s.rec)
}

// Pool returns the session's worker pool, the fan-out primitive every
// simulation caller in the session shares.
func (s *Session) Pool() *evalengine.Pool { return s.engine.Pool() }

// Stats snapshots the session engine's counters.
func (s *Session) Stats() evalengine.Stats { return s.engine.Stats() }

// ResetStats zeroes the session engine's counters (caches are kept).
func (s *Session) ResetStats() { s.engine.ResetStats() }

// EnableTelemetry registers the session engine's counters and histograms
// with a metrics registry.
func (s *Session) EnableTelemetry(reg *telemetry.Registry) { s.engine.EnableTelemetry(reg) }

// EnableIntrospection arms CPI-stack accounting — and, with a non-nil
// ring and positive interval, interval sampling — on the session engine's
// uncached simulations.
func (s *Session) EnableIntrospection(interval int, ring *introspect.Ring) {
	s.engine.EnableIntrospection(interval, ring)
}

// DisableIntrospection returns the session's simulations to the
// accounting-off fast path.
func (s *Session) DisableIntrospection() { s.engine.DisableIntrospection() }

// SetEvalObserver installs (or, with nil, removes) the per-request
// evaluation observer on the session's engine.
func (s *Session) SetEvalObserver(o evalengine.EvalObserver) { s.engine.SetEvalObserver(o) }

// Evaluate runs one memoized evaluation on the session's engine.
func (s *Session) Evaluate(ctx context.Context, cfg sim.Config, p workload.Profile, budget int, t tech.Params, obj power.Objective) (evalengine.Eval, error) {
	return s.engine.Evaluate(s.trace(ctx), cfg, p, budget, t, obj)
}

// EvaluateBatch runs a group of memoized evaluations of one workload at
// one budget on the session's engine; members that miss the cache are
// simulated as a single lockstep group over one shared replay of the
// instruction stream. dst[i] receives the evaluation of cfgs[i].
func (s *Session) EvaluateBatch(ctx context.Context, dst []evalengine.Eval, cfgs []sim.Config, p workload.Profile, budget int, t tech.Params, obj power.Objective) error {
	return s.engine.EvaluateBatch(s.trace(ctx), dst, cfgs, p, budget, t, obj)
}

// Explore runs the annealing search for one workload on this session.
// opt.Engine is overridden with the session's engine.
func (s *Session) Explore(ctx context.Context, p workload.Profile, opt explore.Options) (explore.Outcome, error) {
	opt.Engine = s.engine
	return explore.Workload(s.trace(ctx), p, opt)
}

// ExploreSuite explores every profile on this session (with the paper's
// cross-seeding round). opt.Engine is overridden with the session's
// engine. On cancellation it returns the completed outcomes alongside the
// context's error.
func (s *Session) ExploreSuite(ctx context.Context, profiles []workload.Profile, opt explore.Options) ([]explore.Outcome, error) {
	opt.Engine = s.engine
	return explore.Suite(s.trace(ctx), profiles, opt)
}

// CrossMatrix builds the cross-configuration IPT matrix on this session.
func (s *Session) CrossMatrix(ctx context.Context, profiles []workload.Profile, configs []sim.Config, n int, t tech.Params) (*core.Matrix, error) {
	return core.BuildMatrix(s.trace(ctx), s.engine, profiles, configs, n, t)
}

// CrossMatrixObserved is CrossMatrix with a per-cell completion callback.
func (s *Session) CrossMatrixObserved(ctx context.Context, profiles []workload.Profile, configs []sim.Config, n int, t tech.Params, cell core.CellFunc) (*core.Matrix, error) {
	return core.BuildMatrixObserved(s.trace(ctx), s.engine, profiles, configs, n, t, cell)
}

// CollectSamples gathers regression training data on this session.
func (s *Session) CollectSamples(ctx context.Context, p workload.Profile, configs []sim.Config, instr int, t tech.Params) ([]regression.Sample, error) {
	return regression.CollectSamples(s.trace(ctx), s.engine, p, configs, instr, t)
}
