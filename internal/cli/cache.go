// The persistent evaluation cache shared by the command-line tools: one
// -cache-dir flag that puts a content-addressed on-disk tier
// (internal/evalstore) behind the session's in-memory cache, and one
// -cache-peers flag that adds a remote tier (internal/evalremote) behind
// the disk — memory → disk → remote, each slower and wider than the one
// before. Runs pointed at the same directory or fleet share their work
// across processes — a rerun of an exploration starts with every
// previously simulated point already cached — without changing a single
// result bit: the persistent tiers only ever serve values an engine
// computed and stored.

package cli

import (
	"flag"
	"strings"

	"xpscalar/internal/evalengine"
	"xpscalar/internal/evalremote"
	"xpscalar/internal/evalstore"
)

// CacheConfig carries the persistent-cache flags.
type CacheConfig struct {
	// Dir is the store's root directory ("" for no disk tier).
	Dir string
	// Peers is a comma-separated list of remote cache base URLs
	// ("" for no remote tier).
	Peers string

	disk   *evalstore.Store
	remote *evalremote.Client
}

// RegisterFlags registers -cache-dir and -cache-peers on the default
// flag set.
func (c *CacheConfig) RegisterFlags() {
	flag.StringVar(&c.Dir, "cache-dir", "",
		"persist evaluations to a content-addressed store in this directory, shared across runs")
	flag.StringVar(&c.Peers, "cache-peers", "",
		"comma-separated base URLs of remote cache peers (xpserved instances) to share evaluations with")
}

// Open opens the configured persistent tiers — disk, remote, or both
// composed — ready to hand to evalengine.Options.Backend. With nothing
// configured it returns (nil, nil): the session stays memory-only. The
// returned backend is owned by the session it is installed in —
// Session.Close (reached through Telemetry.Close on every tool's
// shutdown path) flushes and closes every tier.
func (c *CacheConfig) Open() (evalengine.CacheBackend, error) {
	var tiers []evalengine.CacheBackend
	if c.Dir != "" {
		s, err := evalstore.Open(c.Dir)
		if err != nil {
			return nil, err
		}
		c.disk = s
		tiers = append(tiers, s)
	}
	if c.Peers != "" {
		cl, err := evalremote.NewClient(c.PeerList(), evalremote.Options{})
		if err != nil {
			if c.disk != nil {
				c.disk.Close()
				c.disk = nil
			}
			return nil, err
		}
		c.remote = cl
		tiers = append(tiers, cl)
	}
	return evalengine.Tiered(tiers...), nil
}

// Disk returns the local disk store Open created, or nil. A cache
// server hands this (not the full tier chain) to its request handlers,
// so serving the fleet can never re-enter the fleet.
func (c *CacheConfig) Disk() evalengine.CacheBackend {
	if c.disk == nil {
		return nil
	}
	return c.disk
}

// Remote returns the remote-tier client Open created, or nil — the seam
// readiness probes use to ask how much of the fleet is answering.
func (c *CacheConfig) Remote() *evalremote.Client { return c.remote }

// PeerList splits -cache-peers into its individual peer URLs.
func (c *CacheConfig) PeerList() []string {
	var peers []string
	for _, p := range strings.Split(c.Peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}
