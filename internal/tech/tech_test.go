package tech

import "testing"

func TestDefaultMatchesPaperTable2(t *testing.T) {
	p := Default()
	if p.MemoryLatencyNs != 50 {
		t.Errorf("memory latency = %v, want 50 (Table 2)", p.MemoryLatencyNs)
	}
	if p.FrontEndLatencyNs != 2 {
		t.Errorf("front-end latency = %v, want 2 (Table 2)", p.FrontEndLatencyNs)
	}
	if p.IQEntryBytes != 8 {
		t.Errorf("IQ entry width = %v, want 8 bytes / 64 bits (Table 2)", p.IQEntryBytes)
	}
	if p.LatchLatencyNs != 0.03 {
		t.Errorf("latch latency = %v, want 0.03 (Table 2)", p.LatchLatencyNs)
	}
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default().Validate() = %v", err)
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero memory latency", func(p *Params) { p.MemoryLatencyNs = 0 }},
		{"negative front end", func(p *Params) { p.FrontEndLatencyNs = -1 }},
		{"zero IQ entry", func(p *Params) { p.IQEntryBytes = 0 }},
		{"zero latch", func(p *Params) { p.LatchLatencyNs = 0 }},
		{"zero fo4", func(p *Params) { p.FO4Ns = 0 }},
		{"zero wire", func(p *Params) { p.WireNsPerMm = 0 }},
		{"zero bit area", func(p *Params) { p.BitAreaMm2 = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Default()
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("Validate() accepted invalid params %+v", p)
			}
		})
	}
}

func TestMinClockPeriodPositive(t *testing.T) {
	p := Default()
	if mp := p.MinClockPeriodNs(); mp <= p.LatchLatencyNs {
		t.Errorf("MinClockPeriodNs() = %v, must exceed latch latency %v", mp, p.LatchLatencyNs)
	}
}

func TestScaleShrinksLogicNotDRAM(t *testing.T) {
	p := Default()
	s := p.Scale(0.7)
	if s.MemoryLatencyNs != p.MemoryLatencyNs {
		t.Errorf("Scale changed memory latency: %v -> %v", p.MemoryLatencyNs, s.MemoryLatencyNs)
	}
	if s.FO4Ns >= p.FO4Ns {
		t.Errorf("Scale(0.7) did not shrink FO4: %v -> %v", p.FO4Ns, s.FO4Ns)
	}
	if s.LatchLatencyNs >= p.LatchLatencyNs {
		t.Errorf("Scale(0.7) did not shrink latch: %v -> %v", p.LatchLatencyNs, s.LatchLatencyNs)
	}
	if s.BitAreaMm2 >= p.BitAreaMm2 {
		t.Errorf("Scale(0.7) did not shrink bit area: %v -> %v", p.BitAreaMm2, s.BitAreaMm2)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled params invalid: %v", err)
	}
}
