package power

import (
	"testing"

	"xpscalar/internal/sim"
	"xpscalar/internal/tech"
	"xpscalar/internal/timing"
	"xpscalar/internal/workload"
)

func initial(t *testing.T) (sim.Config, tech.Params) {
	t.Helper()
	tp := tech.Default()
	return sim.InitialConfig(tp), tp
}

func runOn(t *testing.T, cfg sim.Config, name string) sim.Result {
	t.Helper()
	tp := tech.Default()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	r, err := sim.Run(cfg, p, 20000, tp)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEstimatePositiveAndPlausible(t *testing.T) {
	cfg, tp := initial(t)
	e, err := EstimateConfig(cfg, tp)
	if err != nil {
		t.Fatal(err)
	}
	if e.AreaMm2 <= 0 || e.StaticWatts <= 0 || e.ClockTreeNJ <= 0 {
		t.Errorf("non-positive estimate %+v", e)
	}
	for _, v := range []float64{e.IQAccessNJ, e.ROBAccessNJ, e.LSQAccessNJ, e.L1AccessNJ, e.L2AccessNJ} {
		if v <= 0 {
			t.Errorf("non-positive access energy in %+v", e)
		}
	}
	// A desktop-class core of this era: single to low tens of mm² of
	// modelled structures, watts of leakage, not kilowatts.
	if e.AreaMm2 > 200 {
		t.Errorf("area %.1fmm² implausible", e.AreaMm2)
	}
	if e.StaticWatts > 50 {
		t.Errorf("leakage %.1fW implausible", e.StaticWatts)
	}
}

func TestBiggerStructuresCostAreaAndEnergy(t *testing.T) {
	cfg, tp := initial(t)
	small, err := EstimateConfig(cfg, tp)
	if err != nil {
		t.Fatal(err)
	}
	big := cfg
	big.ROBSize = 1024
	big.L2 = timing.CacheGeom{Sets: 8192, Assoc: 4, BlockBytes: 128} // 4M
	bigE, err := EstimateConfig(big, tp)
	if err != nil {
		t.Fatal(err)
	}
	if bigE.AreaMm2 <= small.AreaMm2 {
		t.Errorf("bigger config area %.2f <= smaller %.2f", bigE.AreaMm2, small.AreaMm2)
	}
	if bigE.ROBAccessNJ <= small.ROBAccessNJ {
		t.Error("bigger ROB should cost more energy per access")
	}
	if bigE.L2AccessNJ <= small.L2AccessNJ {
		t.Error("bigger L2 should cost more energy per access")
	}
}

func TestWiderMachinesBurnMore(t *testing.T) {
	cfg, tp := initial(t)
	narrow, err := EstimateConfig(cfg, tp)
	if err != nil {
		t.Fatal(err)
	}
	wide := cfg
	wide.Width = 8
	w, err := EstimateConfig(wide, tp)
	if err != nil {
		t.Fatal(err)
	}
	if w.ClockTreeNJ <= narrow.ClockTreeNJ || w.AreaMm2 <= narrow.AreaMm2 {
		t.Errorf("width 8 should cost more clock energy and area: %+v vs %+v", w, narrow)
	}
}

func TestEvaluateProducesConsistentReport(t *testing.T) {
	cfg, tp := initial(t)
	res := runOn(t, cfg, "gzip")
	rep, err := Evaluate(res, tp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DynamicWatts <= 0 || rep.TotalWatts <= rep.DynamicWatts {
		t.Errorf("watts inconsistent: %+v", rep)
	}
	if rep.EnergyNJPerInstr <= 0 {
		t.Error("zero energy per instruction")
	}
	if rep.IPT != res.IPT() {
		t.Error("IPT not carried through")
	}
	if rep.EDP() <= 0 || rep.ED2P() <= 0 {
		t.Error("EDP/ED2P must be positive")
	}
	// ED2P = EDP / IPT.
	if d := rep.ED2P() - rep.EDP()/rep.IPT; d > 1e-9 || d < -1e-9 {
		t.Errorf("ED2P inconsistent with EDP: %v", d)
	}
}

func TestEvaluateRejectsEmptyResult(t *testing.T) {
	_, tp := initial(t)
	if _, err := Evaluate(sim.Result{}, tp); err == nil {
		t.Error("accepted empty result")
	}
}

func TestScoreObjectives(t *testing.T) {
	cfg, tp := initial(t)
	res := runOn(t, cfg, "gzip")
	ipt, err := Score(res, ObjIPT, tp)
	if err != nil || ipt != res.IPT() {
		t.Errorf("ObjIPT score = %v, %v", ipt, err)
	}
	for _, obj := range []Objective{ObjIPTPerWatt, ObjInverseEDP, ObjInverseED2P} {
		s, err := Score(res, obj, tp)
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		if s <= 0 {
			t.Errorf("%v score = %v", obj, s)
		}
	}
	if _, err := Score(res, Objective(99), tp); err == nil {
		t.Error("accepted unknown objective")
	}
}

func TestEfficiencyPrefersModestCore(t *testing.T) {
	// The point of the extension: under IPT/Watt a lean core should beat
	// a maximal one on at least some workloads, flipping the raw-IPT
	// ordering or at least narrowing it drastically.
	tp := tech.Default()
	lean := sim.InitialConfig(tp)

	big := sim.InitialConfig(tp)
	big.ClockNs = 0.45
	big.FrontEndStages = 5
	big.Width = 6
	big.ROBSize = 1024
	big.IQSize = 128
	big.LSQSize = 256
	big.SchedDepth = 2
	big.WakeupMinLat = 1
	big.L2 = timing.CacheGeom{Sets: 8192, Assoc: 4, BlockBytes: 128}
	big.L2Lat = 14
	big.MemCycles = 125
	if err := big.Validate(tp); err != nil {
		t.Fatalf("big config invalid: %v", err)
	}

	p, _ := workload.ByName("crafty")
	leanRes, err := sim.Run(lean, p, 20000, tp)
	if err != nil {
		t.Fatal(err)
	}
	bigRes, err := sim.Run(big, p, 20000, tp)
	if err != nil {
		t.Fatal(err)
	}
	leanEff, err := Score(leanRes, ObjIPTPerWatt, tp)
	if err != nil {
		t.Fatal(err)
	}
	bigEff, err := Score(bigRes, ObjIPTPerWatt, tp)
	if err != nil {
		t.Fatal(err)
	}
	leanIPT := leanRes.IPT()
	bigIPT := bigRes.IPT()
	// Efficiency ordering must favour the lean core *more* than raw
	// performance does.
	if leanEff/bigEff <= leanIPT/bigIPT {
		t.Errorf("efficiency ratio %.3f should exceed performance ratio %.3f",
			leanEff/bigEff, leanIPT/bigIPT)
	}
}

func TestObjectiveStrings(t *testing.T) {
	for obj, want := range map[Objective]string{
		ObjIPT: "ipt", ObjIPTPerWatt: "ipt-per-watt", ObjInverseEDP: "1/edp", ObjInverseED2P: "1/ed2p",
	} {
		if obj.String() != want {
			t.Errorf("%d.String() = %q, want %q", obj, obj.String(), want)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	tp := tech.Default()
	cfg := sim.InitialConfig(tp)
	p, _ := workload.ByName("gzip")
	res, err := sim.Run(cfg, p, 10000, tp)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(res, tp); err != nil {
			b.Fatal(err)
		}
	}
}
