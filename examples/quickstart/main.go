// Quickstart: simulate one workload on the paper's initial configuration
// (Table 3), inspect the result, and show the fit-to-clock discipline of
// Figure 2 — how the clock period couples the sizing of the issue queue and
// L1 cache.
package main

import (
	"fmt"
	"log"

	"xpscalar"
)

func main() {
	log.SetFlags(0)
	tech := xpscalar.DefaultTech()

	// 1. Pick a workload and the paper's Table 3 starting configuration.
	gzip, ok := xpscalar.WorkloadByName("gzip")
	if !ok {
		log.Fatal("no gzip profile")
	}
	cfg := xpscalar.InitialConfig(tech)
	fmt.Println("initial configuration (Table 3):")
	fmt.Println(" ", cfg)

	// 2. Simulate 100k instructions and report IPC and IPT.
	res, err := xpscalar.Run(cfg, gzip, 100_000, tech)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngzip on the initial configuration:\n")
	fmt.Printf("  IPC            %.3f\n", res.IPC())
	fmt.Printf("  IPT            %.3f instructions/ns\n", res.IPT())
	fmt.Printf("  mispredicts    %.2f%%\n", res.Branch.MispredictRate()*100)
	fmt.Printf("  L1 miss rate   %.2f%%\n", res.L1.MissRate()*100)
	fmt.Printf("  L2 miss rate   %.2f%%\n", res.L2.MissRate()*100)

	// 3. Figure 2's point: the same workload under different clock
	//    periods, with every unit re-fitted to its stage budget. A faster
	//    clock shrinks what fits in one cycle; a slower clock buys bigger
	//    structures per stage.
	fmt.Println("\nclock-period coupling (Figure 2):")
	for _, clock := range []float64{0.45, 0.33, 0.25} {
		c := cfg
		c.ClockNs = clock
		// Re-fit the structures the paper's scenarios vary.
		c.FrontEndStages = xpscalar.FrontEndStages(clock, tech)
		c.MemCycles = xpscalar.MemoryCycles(clock, tech)
		c.IQSize = xpscalar.FitIQ(clock, c.SchedDepth, c.Width, tech)
		c.ROBSize = xpscalar.FitROB(clock, c.SchedDepth, c.Width, tech)
		if c.IQSize > c.ROBSize {
			c.IQSize = c.ROBSize
		}
		r, err := xpscalar.Run(c, gzip, 100_000, tech)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  clock %.2fns: IQ %3d, ROB %4d, FE %2d stages -> IPC %.3f, IPT %.3f\n",
			clock, c.IQSize, c.ROBSize, c.FrontEndStages, r.IPC(), r.IPT())
	}
	fmt.Println("\nNeither extreme wins universally — which is why the paper explores the")
	fmt.Println("clock period as a first-class design parameter per workload.")
}
