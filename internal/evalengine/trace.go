// Trace reuse. Every sim.Run used to rebuild a workload's synthetic
// instruction stream from its generator, even though the stream is a
// deterministic function of the profile alone and the pipeline consumes
// exactly n instructions per evaluation. The trace store materializes each
// profile's stream once, lazily extended to the longest budget requested,
// and hands out cheap replay readers over shared prefixes — the same
// instructions, generated once instead of once per evaluation.

package evalengine

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"xpscalar/internal/workload"
)

// traceStore caches materialized instruction streams per profile, bounded
// by a total instruction budget with least-recently-used eviction across
// profiles.
type traceStore struct {
	cap int // total cached instructions across all profiles

	mu      sync.Mutex
	entries map[string]*traceEntry
	order   *list.List // front = most recently used; values are keys

	built     atomic.Uint64 // instructions generated into the store
	replays   atomic.Uint64 // sources served from cached streams
	bypasses  atomic.Uint64 // requests too large to cache
	evictions atomic.Uint64 // profile streams evicted

	// Delivery counters, fed by the replay sources this store hands out:
	// how many instructions reached consumers through the batched
	// near-memcpy path vs the scalar per-instruction path. Together with
	// built (generated instructions) they make replay-vs-generate
	// throughput observable.
	batchCalls  atomic.Uint64 // NextBatch calls served by replay sources
	batchInstr  atomic.Uint64 // instructions delivered via NextBatch
	scalarInstr atomic.Uint64 // instructions delivered via scalar Next
}

// traceEntry is one profile's materialized stream. The generator and slice
// are guarded by mu; size mirrors len(instrs) but is guarded by the store's
// mutex so eviction never needs an entry's lock (avoiding lock-order
// inversion between entries).
type traceEntry struct {
	key  string
	elem *list.Element
	size int // guarded by traceStore.mu

	mu     sync.Mutex
	gen    *workload.Generator
	instrs []workload.Instr
}

func newTraceStore(capInstr int) *traceStore {
	return &traceStore{
		cap:     capInstr,
		entries: make(map[string]*traceEntry),
		order:   list.New(),
	}
}

// profileKey canonically fingerprints a profile: two profiles with equal
// fields generate identical streams. %#v bypasses any String method and
// keeps full float precision (see Fingerprint).
func profileKey(p workload.Profile) string { return fmt.Sprintf("%#v", p) }

// source returns a Source replaying the first n instructions of the
// profile's stream, materializing (or extending) the cached trace as
// needed. Requests larger than the store's capacity bypass the cache and
// get a fresh generator — identical stream, no reuse.
func (s *traceStore) source(p workload.Profile, n int) (workload.Source, error) {
	if n > s.cap {
		s.bypasses.Add(1)
		return workload.NewGenerator(p)
	}
	key := profileKey(p)
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		gen, err := workload.NewGenerator(p)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		e = &traceEntry{key: key, gen: gen}
		e.elem = s.order.PushFront(key)
		s.entries[key] = e
	} else {
		s.order.MoveToFront(e.elem)
	}
	s.mu.Unlock()

	e.mu.Lock()
	if n > len(e.instrs) {
		base := len(e.instrs)
		e.instrs = append(e.instrs, make([]workload.Instr, n-base)...)
		for i := base; i < n; i++ {
			e.gen.Next(&e.instrs[i])
		}
		s.built.Add(uint64(n - base))
		s.grown(e, n-base)
	}
	// Full-capacity reslice: replays stay valid even if the entry is
	// later extended (append re-allocates) or evicted.
	instrs := e.instrs[:n:n]
	e.mu.Unlock()
	s.replays.Add(1)
	return &replaySource{instrs: instrs, store: s}, nil
}

// grown charges the entry's growth against the store budget and evicts
// least-recently-used streams (never the one just used) until it fits.
func (s *traceStore) grown(e *traceEntry, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries[e.key] != e {
		return // evicted while growing; its readers stay valid
	}
	e.size += n
	total := 0
	for _, ent := range s.entries {
		total += ent.size
	}
	for total > s.cap && s.order.Len() > 1 {
		back := s.order.Back()
		if back == e.elem {
			break
		}
		key := back.Value.(string)
		victim := s.entries[key]
		total -= victim.size
		delete(s.entries, key)
		s.order.Remove(back)
		s.evictions.Add(1)
	}
}

// replaySource replays a materialized instruction slice. Like
// workload.TraceReader it wraps at the end, though the pipeline consumes
// exactly len(instrs) per evaluation. Deliveries are charged to the owning
// store's batch/scalar counters (one atomic add per call; the batch path
// amortizes it over a whole slab).
type replaySource struct {
	instrs []workload.Instr
	pos    int
	store  *traceStore
}

func (r *replaySource) Next(ins *workload.Instr) {
	*ins = r.instrs[r.pos]
	r.pos++
	if r.pos == len(r.instrs) {
		r.pos = 0
	}
	r.store.scalarInstr.Add(1)
}

// NextBatch copies the next len(dst) instructions out of the materialized
// stream — the near-memcpy fast path the pipeline's batched fetch rides.
func (r *replaySource) NextBatch(dst []workload.Instr) int {
	n := 0
	for n < len(dst) {
		c := copy(dst[n:], r.instrs[r.pos:])
		n += c
		r.pos += c
		if r.pos == len(r.instrs) {
			r.pos = 0
		}
	}
	r.store.batchCalls.Add(1)
	r.store.batchInstr.Add(uint64(n))
	return n
}
